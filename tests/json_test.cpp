// Tests for the JSON writer and parser.
#include <gtest/gtest.h>

#include "io/json.h"

namespace re::io {
namespace {

TEST(JsonEscape, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object()
      .field("name", "R&E")
      .field("count", 42)
      .field("share", 0.5)
      .field("flag", true)
      .end_object();
  EXPECT_EQ(w.str(),
            R"({"name":"R&E","count":42,"share":0.5,"flag":true})");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter w;
  w.begin_object();
  w.key("rounds").begin_array().value("re").value("commodity").end_array();
  w.key("meta").begin_object().field("n", 2).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"rounds":["re","commodity"],"meta":{"n":2}})");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  w.begin_object().field("a", 1).end_object();
  w.begin_object().field("b", 2).end_object();
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"a":1},{"b":2}])");
}

TEST(JsonWriter, NullValue) {
  JsonWriter w;
  w.begin_object();
  w.key("x");
  w.null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"x":null})");
}

TEST(JsonParser, Scalars) {
  EXPECT_TRUE(parse_json("null")->is_null());
  EXPECT_EQ(parse_json("true")->as_bool(), true);
  EXPECT_EQ(parse_json("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse_json("1e3")->as_number(), 1000.0);
  EXPECT_EQ(parse_json(R"("hello")")->as_string(), "hello");
}

TEST(JsonParser, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd")")->as_string(), "a\"b\\c\nd");
  EXPECT_EQ(parse_json(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")")->as_string(), "\xc3\xa9");  // é
}

TEST(JsonParser, ObjectsAndArrays) {
  const auto v = parse_json(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  const JsonValue* b = a->as_array()[2].find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->as_string(), "c");
  EXPECT_TRUE(v->find("d")->is_null());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(JsonParser, EmptyContainers) {
  EXPECT_TRUE(parse_json("{}")->as_object().empty());
  EXPECT_TRUE(parse_json("[]")->as_array().empty());
  EXPECT_TRUE(parse_json("  { }  ")->is_object());
}

struct BadJsonCase {
  const char* text;
};
class JsonParserRejects : public ::testing::TestWithParam<BadJsonCase> {};

TEST_P(JsonParserRejects, Rejects) {
  EXPECT_FALSE(parse_json(GetParam().text).has_value()) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParserRejects,
    ::testing::Values(BadJsonCase{""}, BadJsonCase{"{"}, BadJsonCase{"["},
                      BadJsonCase{"{\"a\"}"}, BadJsonCase{"{\"a\":}"},
                      BadJsonCase{"[1,]"}, BadJsonCase{"{\"a\":1,}"},
                      BadJsonCase{"\"unterminated"}, BadJsonCase{"tru"},
                      BadJsonCase{"nul"}, BadJsonCase{"1 2"},
                      BadJsonCase{"{} extra"}, BadJsonCase{"\"\\x\""},
                      BadJsonCase{"\"\\u12\""}, BadJsonCase{"--1"}));

TEST(JsonRoundTrip, WriterOutputParses) {
  JsonWriter w;
  w.begin_object()
      .field("prefix", "163.253.63.0/24")
      .field("origin", std::uint64_t{396955});
  w.key("rounds").begin_array();
  for (int i = 0; i < 9; ++i) w.value(i % 2 ? "re" : "commodity");
  w.end_array().end_object();
  const auto parsed = parse_json(w.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("prefix")->as_string(), "163.253.63.0/24");
  EXPECT_DOUBLE_EQ(parsed->find("origin")->as_number(), 396955.0);
  EXPECT_EQ(parsed->find("rounds")->as_array().size(), 9u);
}

}  // namespace
}  // namespace re::io
