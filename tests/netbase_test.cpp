// Unit tests for the netbase substrate: IPv4 values, prefixes, the prefix
// trie, RNG determinism, and the simulation clock.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "netbase/asn.h"
#include "netbase/clock.h"
#include "netbase/ipv4.h"
#include "netbase/prefix.h"
#include "netbase/prefix_trie.h"
#include "netbase/rng.h"

namespace re::net {
namespace {

// ---------------------------------------------------------------- IPv4

TEST(IPv4Address, RoundTripsDottedQuad) {
  const auto a = IPv4Address::parse("163.253.63.63");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "163.253.63.63");
}

TEST(IPv4Address, FromOctetsMatchesParse) {
  EXPECT_EQ(IPv4Address::from_octets(10, 20, 30, 40),
            IPv4Address::parse("10.20.30.40"));
}

TEST(IPv4Address, OctetAccessors) {
  const IPv4Address a = IPv4Address::from_octets(1, 2, 3, 4);
  EXPECT_EQ(a.octet(0), 1);
  EXPECT_EQ(a.octet(1), 2);
  EXPECT_EQ(a.octet(2), 3);
  EXPECT_EQ(a.octet(3), 4);
}

TEST(IPv4Address, ParsesBoundaries) {
  EXPECT_TRUE(IPv4Address::parse("0.0.0.0").has_value());
  EXPECT_TRUE(IPv4Address::parse("255.255.255.255").has_value());
  EXPECT_EQ(IPv4Address::parse("255.255.255.255")->value(), ~0u);
}

struct BadAddressCase {
  const char* text;
};
class IPv4ParseRejects : public ::testing::TestWithParam<BadAddressCase> {};

TEST_P(IPv4ParseRejects, Rejects) {
  EXPECT_FALSE(IPv4Address::parse(GetParam().text).has_value())
      << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, IPv4ParseRejects,
    ::testing::Values(BadAddressCase{""}, BadAddressCase{"1.2.3"},
                      BadAddressCase{"1.2.3.4.5"}, BadAddressCase{"256.1.1.1"},
                      BadAddressCase{"1.2.3.256"}, BadAddressCase{"a.b.c.d"},
                      BadAddressCase{"1..2.3"}, BadAddressCase{"1.2.3.4 "},
                      BadAddressCase{" 1.2.3.4"}, BadAddressCase{"01.2.3.4"},
                      BadAddressCase{"1.2.3.-4"}, BadAddressCase{"1.2.3.+4"}));

TEST(IPv4Address, OrderingIsNumeric) {
  EXPECT_LT(*IPv4Address::parse("9.255.255.255"),
            *IPv4Address::parse("10.0.0.0"));
  EXPECT_LT(*IPv4Address::parse("10.0.0.0"), *IPv4Address::parse("10.0.0.1"));
}

TEST(IPv4Address, Hashable) {
  std::unordered_set<IPv4Address> set;
  set.insert(*IPv4Address::parse("1.2.3.4"));
  set.insert(*IPv4Address::parse("1.2.3.4"));
  EXPECT_EQ(set.size(), 1u);
}

// ---------------------------------------------------------------- Prefix

TEST(Prefix, ParsesAndFormats) {
  const auto p = Prefix::parse("192.0.2.0/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->to_string(), "192.0.2.0/24");
  EXPECT_EQ(p->length(), 24);
}

TEST(Prefix, CanonicalizesHostBits) {
  const Prefix p(*IPv4Address::parse("192.0.2.77"), 24);
  EXPECT_EQ(p.network().to_string(), "192.0.2.0");
  EXPECT_EQ(p, *Prefix::parse("192.0.2.0/24"));
}

TEST(Prefix, RejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("192.0.2.0").has_value());
  EXPECT_FALSE(Prefix::parse("192.0.2.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("192.0.2.0/").has_value());
  EXPECT_FALSE(Prefix::parse("bogus/24").has_value());
  EXPECT_FALSE(Prefix::parse("192.0.2.0/2x").has_value());
}

TEST(Prefix, ContainsAddressesInBlock) {
  const Prefix p = *Prefix::parse("10.1.0.0/16");
  EXPECT_TRUE(p.contains(*IPv4Address::parse("10.1.0.0")));
  EXPECT_TRUE(p.contains(*IPv4Address::parse("10.1.255.255")));
  EXPECT_FALSE(p.contains(*IPv4Address::parse("10.2.0.0")));
  EXPECT_FALSE(p.contains(*IPv4Address::parse("10.0.255.255")));
}

TEST(Prefix, CoversMoreSpecifics) {
  const Prefix parent = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(parent.covers(*Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(parent.covers(parent));
  EXPECT_FALSE(parent.covers(*Prefix::parse("11.0.0.0/8")));
  EXPECT_FALSE(Prefix::parse("10.1.0.0/16")->covers(parent));
}

TEST(Prefix, SizeAndAddressAt) {
  const Prefix p = *Prefix::parse("192.0.2.0/24");
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.address_at(63).to_string(), "192.0.2.63");
  EXPECT_EQ(p.address_at(256).to_string(), "192.0.2.0");  // wraps
  EXPECT_EQ(p.first_address().to_string(), "192.0.2.0");
  EXPECT_EQ(p.last_address().to_string(), "192.0.2.255");
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix all(IPv4Address{}, 0);
  EXPECT_EQ(all.mask(), 0u);
  EXPECT_TRUE(all.contains(*IPv4Address::parse("255.1.2.3")));
  EXPECT_EQ(all.size(), std::uint64_t{1} << 32);
}

TEST(Prefix, MaskForBoundaries) {
  EXPECT_EQ(Prefix::mask_for(0), 0u);
  EXPECT_EQ(Prefix::mask_for(32), ~0u);
  EXPECT_EQ(Prefix::mask_for(24), 0xffffff00u);
  EXPECT_EQ(Prefix::mask_for(1), 0x80000000u);
}

// ------------------------------------------------------------- PrefixTrie

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Prefix::parse("10.0.0.0/8"), 2));  // overwrite
  ASSERT_NE(trie.find(*Prefix::parse("10.0.0.0/8")), nullptr);
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestMatchPrefersMostSpecific) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);

  const auto hit = trie.longest_match(*IPv4Address::parse("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->second, 24);

  const auto mid = trie.longest_match(*IPv4Address::parse("10.1.9.9"));
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(*mid->second, 16);

  const auto top = trie.longest_match(*IPv4Address::parse("10.9.9.9"));
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(*top->second, 8);

  EXPECT_FALSE(trie.longest_match(*IPv4Address::parse("11.0.0.1")).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesAll) {
  PrefixTrie<int> trie;
  trie.insert(Prefix(IPv4Address{}, 0), 0);
  const auto hit = trie.longest_match(*IPv4Address::parse("203.0.113.7"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->first.length(), 0);
}

TEST(PrefixTrie, HasShorterCover) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  EXPECT_TRUE(trie.has_shorter_cover(*Prefix::parse("10.1.0.0/16")));
  EXPECT_FALSE(trie.has_shorter_cover(*Prefix::parse("10.0.0.0/8")));  // self
  EXPECT_FALSE(trie.has_shorter_cover(*Prefix::parse("11.0.0.0/16")));
}

TEST(PrefixTrie, ForEachVisitsParentsFirst) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  std::vector<int> seen;
  trie.for_each([&](const Prefix&, const int& v) { seen.push_back(v); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 8);
  EXPECT_EQ(seen[1], 24);
}

TEST(PrefixTrie, SizeTracksDistinctPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/16"), 2);  // same bits, different len
  EXPECT_EQ(trie.size(), 2u);
}

// --------------------------------------------------------------------- Asn

TEST(Asn, StrongTypeBasics) {
  const Asn a{11537};
  EXPECT_EQ(a.value(), 11537u);
  EXPECT_EQ(a.to_string(), "AS11537");
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(Asn{}.valid());
  EXPECT_LT(Asn{100}, Asn{200});
}

TEST(Asn, WellKnownConstants) {
  EXPECT_EQ(asn::kInternet2.value(), 11537u);
  EXPECT_EQ(asn::kSurf.value(), 1103u);
  EXPECT_EQ(asn::kLumen.value(), 3356u);
  EXPECT_EQ(asn::kNiks.value(), 3267u);
}

// --------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all values reachable
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, WeightedRespectsZeroWeight) {
  Rng rng(5);
  const double weights[] = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.weighted(weights), 1u);
  }
}

TEST(Rng, WeightedRoughlyProportional) {
  Rng rng(5);
  const double weights[] = {1.0, 3.0};
  int hits[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++hits[rng.weighted(weights)];
  EXPECT_NEAR(static_cast<double>(hits[1]) / 10000.0, 0.75, 0.03);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(13);
  Rng child = a.fork(1);
  Rng a2(13);
  Rng child2 = a2.fork(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child.next(), child2.next());
}

// ------------------------------------------------------------------- Clock

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(10);
  EXPECT_EQ(clock.now(), 10);
  clock.advance(-5);  // ignored
  EXPECT_EQ(clock.now(), 10);
  clock.advance_to(5);  // ignored, would go backwards
  EXPECT_EQ(clock.now(), 10);
  clock.advance_to(100);
  EXPECT_EQ(clock.now(), 100);
}

TEST(SimClock, FormatsHms) {
  EXPECT_EQ(SimClock::format(0), "00:00:00");
  EXPECT_EQ(SimClock::format(kHour + 2 * kMinute + 18), "01:02:18");
  EXPECT_EQ(SimClock::format(10 * kHour), "10:00:00");
}

}  // namespace
}  // namespace re::net
