// Prefix-scoped incremental re-convergence: the delta-driven engine
// (run_dirty_to_convergence / the scoped run_to_convergence overload)
// must be *provably boring* — a scoped run performs exactly the work a
// full run would perform for the scoped prefixes, and deferred prefixes
// catch up to the identical per-prefix state later. These tests pin that
// contract three ways:
//   1. same-schedule runs (only the measurement prefix ever dirty) are
//      bit-identical full vs dirty vs scoped, serial and sharded;
//   2. fork -> scoped prepend sweep equals a cold full-run sweep;
//   3. deferred catch-up: scoping past live background churn, then
//      draining, lands every prefix on the eager run's content digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "bgp/network.h"
#include "netbase/clock.h"
#include "topology/ecosystem.h"

namespace re::bgp {
namespace {

topo::Ecosystem make_world() {
  topo::EcosystemParams params;
  params = params.scaled(0.06);
  params.seed = 20250806;
  return topo::Ecosystem::generate(params);
}

// The nine §3.3 prepend configurations, collapsed to the network-level
// blanket knob: the monotone 4..0..4 sweep exercises shrink, floor, and
// grow transitions.
constexpr std::uint32_t kSweep[9] = {4, 3, 2, 1, 0, 1, 2, 3, 4};

// Picks the measurement prefix (first non-covered) plus `background`
// further member prefixes.
struct Cast {
  const topo::PrefixRecord* meas = nullptr;
  std::vector<const topo::PrefixRecord*> background;
};

Cast pick_cast(const topo::Ecosystem& eco, std::size_t background) {
  Cast cast;
  for (const topo::PrefixRecord& rec : eco.prefixes()) {
    if (rec.covered) continue;
    if (cast.meas == nullptr) {
      cast.meas = &rec;
    } else if (cast.background.size() < background) {
      cast.background.push_back(&rec);
    } else {
      break;
    }
  }
  return cast;
}

// Builds a network, announces the cast, and drains to a converged
// baseline at a fixed clock position.
std::unique_ptr<BgpNetwork> converged_baseline(const topo::Ecosystem& eco,
                                               const Cast& cast,
                                               std::size_t workers) {
  auto network = std::make_unique<BgpNetwork>(424244);
  eco.build_network(*network);
  network->set_workers(workers);
  network->announce(cast.meas->origin, cast.meas->prefix);
  for (const topo::PrefixRecord* rec : cast.background) {
    network->announce(rec->origin, rec->prefix);
  }
  network->run_to_convergence();
  EXPECT_TRUE(network->converged());
  EXPECT_TRUE(network->dirty_prefixes().empty());
  return network;
}

enum class RunMode { kFull, kDirty, kScoped };

// The nine-round prepend sweep on a converged baseline. Only the
// measurement prefix is ever dirtied, so all three run modes execute the
// exact same message schedule and must land on the same state_digest.
std::uint64_t sweep_digest(BgpNetwork& network, const net::Prefix& prefix,
                           net::Asn origin, RunMode mode) {
  const net::SimTime t0 = network.clock().now();
  for (int round = 0; round < 9; ++round) {
    network.clock().advance_to(t0 + (round + 1) * net::kHour);
    network.set_origin_prepend(origin, prefix, kSweep[round]);
    switch (mode) {
      case RunMode::kFull:
        network.run_to_convergence();
        break;
      case RunMode::kDirty:
        network.run_dirty_to_convergence();
        break;
      case RunMode::kScoped:
        network.run_to_convergence(std::span<const net::Prefix>(&prefix, 1));
        break;
    }
    EXPECT_TRUE(network.converged()) << "round " << round;
  }
  return network.state_digest();
}

TEST(NetworkIncremental, NineConfigSweepBitIdenticalAcrossRunModes) {
  const topo::Ecosystem eco = make_world();
  const Cast cast = pick_cast(eco, 4);
  ASSERT_NE(cast.meas, nullptr);
  ASSERT_FALSE(cast.background.empty());

  std::uint64_t reference = 0;
  for (const RunMode mode :
       {RunMode::kFull, RunMode::kDirty, RunMode::kScoped}) {
    auto network = converged_baseline(eco, cast, 1);
    const std::uint64_t digest =
        sweep_digest(*network, cast.meas->prefix, cast.meas->origin, mode);
    if (mode == RunMode::kFull) {
      reference = digest;
    } else {
      EXPECT_EQ(digest, reference) << "mode " << static_cast<int>(mode);
    }
    EXPECT_TRUE(network->dirty_prefixes().empty());
  }
  ASSERT_NE(reference, 0u);
}

TEST(NetworkIncremental, ScopedSweepBitIdenticalWhenSharded) {
  const topo::Ecosystem eco = make_world();
  const Cast cast = pick_cast(eco, 4);
  ASSERT_NE(cast.meas, nullptr);

  auto serial_full = converged_baseline(eco, cast, 1);
  const std::uint64_t reference = sweep_digest(
      *serial_full, cast.meas->prefix, cast.meas->origin, RunMode::kFull);

  for (const RunMode mode : {RunMode::kDirty, RunMode::kScoped}) {
    auto sharded = converged_baseline(eco, cast, 2);
    EXPECT_EQ(sweep_digest(*sharded, cast.meas->prefix, cast.meas->origin,
                           mode),
              reference)
        << "mode " << static_cast<int>(mode);
  }
}

TEST(NetworkIncremental, ForkThenScopedSweepMatchesColdFullSweep) {
  const topo::Ecosystem eco = make_world();
  const Cast cast = pick_cast(eco, 4);
  ASSERT_NE(cast.meas, nullptr);

  // Cold path: fresh network, full drains every round.
  auto cold = converged_baseline(eco, cast, 1);
  const NetworkSnapshot snap = cold->checkpoint();
  const std::uint64_t cold_digest =
      sweep_digest(*cold, cast.meas->prefix, cast.meas->origin, RunMode::kFull);

  // Warm path: fork the converged checkpoint, run the sweep scoped.
  auto warm = snap.fork();
  EXPECT_TRUE(warm->converged());
  EXPECT_TRUE(warm->dirty_prefixes().empty());
  const std::uint64_t warm_digest = sweep_digest(
      *warm, cast.meas->prefix, cast.meas->origin, RunMode::kScoped);
  EXPECT_EQ(warm_digest, cold_digest);
}

TEST(NetworkIncremental, DeferredBackgroundCatchesUpToEagerContentDigests) {
  const topo::Ecosystem eco = make_world();
  const Cast cast = pick_cast(eco, 3);
  ASSERT_NE(cast.meas, nullptr);
  ASSERT_EQ(cast.background.size(), 3u);

  // Both passes mutate measurement AND background prefixes at identical
  // clock times; the scoped pass defers all background work until one
  // final drain. Global seq/intern order then legitimately diverges, so
  // the gate is the per-prefix *content* digest.
  auto run_pass = [&](bool scoped) {
    auto network = converged_baseline(eco, cast, 1);
    const net::SimTime t0 = network->clock().now();
    for (int round = 0; round < 9; ++round) {
      network->clock().advance_to(t0 + (round + 1) * net::kHour);
      network->set_origin_prepend(cast.meas->origin, cast.meas->prefix,
                                  kSweep[round]);
      for (std::size_t i = 0; i < cast.background.size(); ++i) {
        network->set_origin_prepend(cast.background[i]->origin,
                                    cast.background[i]->prefix,
                                    kSweep[(round + i + 1) % 9]);
      }
      if (scoped) {
        network->run_to_convergence(
            std::span<const net::Prefix>(&cast.meas->prefix, 1));
      } else {
        network->run_to_convergence();
      }
    }
    if (scoped) {
      // Background churn is still queued/dirty — the deferred work exists.
      EXPECT_FALSE(network->dirty_prefixes().empty());
      network->run_to_convergence();
    }
    EXPECT_TRUE(network->converged());
    return network;
  };

  auto eager = run_pass(/*scoped=*/false);
  auto deferred = run_pass(/*scoped=*/true);
  EXPECT_EQ(deferred->prefix_state_digest(cast.meas->prefix),
            eager->prefix_state_digest(cast.meas->prefix));
  for (const topo::PrefixRecord* rec : cast.background) {
    EXPECT_EQ(deferred->prefix_state_digest(rec->prefix),
              eager->prefix_state_digest(rec->prefix))
        << "background prefix " << rec->prefix.to_string();
  }
}

TEST(NetworkIncremental, DirtyBookkeepingAndScopeCounters) {
  const topo::Ecosystem eco = make_world();
  const Cast cast = pick_cast(eco, 2);
  ASSERT_NE(cast.meas, nullptr);
  ASSERT_EQ(cast.background.size(), 2u);

  BgpNetwork network(7);
  eco.build_network(network);
  EXPECT_TRUE(network.converged());
  EXPECT_TRUE(network.dirty_prefixes().empty());

  // Mutators seed the dirty set even before any message is queued.
  network.announce(cast.meas->origin, cast.meas->prefix);
  network.announce(cast.background[0]->origin, cast.background[0]->prefix);
  std::vector<net::Prefix> dirty = network.dirty_prefixes();
  ASSERT_EQ(dirty.size(), 2u);
  EXPECT_GT(network.pending_messages(), 0u);
  EXPECT_FALSE(network.converged());

  // A scoped run converges its prefix, leaves the other queued, and
  // reports the skipped backlog honestly.
  const ConvergenceStats scoped = network.run_to_convergence(
      std::span<const net::Prefix>(&cast.meas->prefix, 1));
  EXPECT_GT(scoped.messages_delivered, 0u);
  EXPECT_EQ(scoped.perf.prefixes_dirty, 1u);
  EXPECT_GT(scoped.perf.speakers_touched, 0u);
  EXPECT_GT(scoped.perf.messages_skipped_by_scope, 0u);
  EXPECT_FALSE(network.converged());  // background still in flight
  dirty = network.dirty_prefixes();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], cast.background[0]->prefix);

  // run_dirty converges the rest and clears the set; a converged network
  // reports a zero-width dirty run.
  const ConvergenceStats rest = network.run_dirty_to_convergence();
  EXPECT_GT(rest.messages_delivered, 0u);
  EXPECT_TRUE(network.converged());
  EXPECT_TRUE(network.dirty_prefixes().empty());
  const ConvergenceStats idle = network.run_dirty_to_convergence();
  EXPECT_EQ(idle.messages_delivered, 0u);
  EXPECT_EQ(idle.perf.prefixes_dirty, 0u);
  EXPECT_TRUE(idle.fully_converged);

  // A prepend change on a converged prefix re-dirties exactly it.
  network.set_origin_prepend(cast.meas->origin, cast.meas->prefix, 2);
  dirty = network.dirty_prefixes();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], cast.meas->prefix);
  network.run_dirty_to_convergence();
  EXPECT_TRUE(network.dirty_prefixes().empty());

  // clear_prefix drops queued work and the dirty mark.
  network.withdraw(cast.meas->origin, cast.meas->prefix);
  EXPECT_FALSE(network.dirty_prefixes().empty());
  network.clear_prefix(cast.meas->prefix);
  EXPECT_TRUE(network.dirty_prefixes().empty());
  EXPECT_TRUE(network.converged());
}

}  // namespace
}  // namespace re::bgp
