// Round-sharded propagation determinism: running the same scenario at any
// worker count must be bit-identical to serial — same per-stage
// convergence stats, same collector UpdateLog byte for byte, same RIB
// outcomes at every vantage. This is the contract that lets every sweep
// in the repo turn on intra-network workers without re-validating results
// (see DESIGN.md, "Intra-network round-sharded propagation").
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bgp/network.h"
#include "topology/ecosystem.h"

namespace re::bgp {
namespace {

topo::Ecosystem make_world() {
  topo::EcosystemParams params;
  params = params.scaled(0.06);
  params.seed = 20250806;
  return topo::Ecosystem::generate(params);
}

// Everything observable about a sweep, serialized for byte comparison.
struct Observation {
  std::vector<std::uint64_t> stage_stats;  // msgs/changes/converged per stage
  std::vector<std::string> log_lines;      // full collector update log
  std::vector<std::string> vantage_paths;  // best path at every collector
  std::uint64_t interned_paths = 0;
  std::uint64_t parallel_rounds = 0;
  double avg_probe_length = 0.0;
};

void snapshot_log(const BgpNetwork& network, Observation& out) {
  for (const CollectorUpdate& u : network.update_log().updates()) {
    std::string line = std::to_string(u.time);
    line += ' ';
    line += std::to_string(u.peer.value());
    line += u.withdraw ? " w " : " a ";
    for (const net::Asn asn : network.update_log().path_span(u)) {
      line += std::to_string(asn.value());
      line += ',';
    }
    out.log_lines.push_back(std::move(line));
  }
}

// Sweeps a handful of member prefixes through announce -> prepend ->
// withdraw cycles at the given worker count and records every observable.
Observation run_sweep(const topo::Ecosystem& eco, std::size_t workers,
                      std::size_t prefix_count) {
  BgpNetwork network(424243);
  eco.build_network(network);
  network.set_workers(workers);

  Observation out;
  runtime::PerfCounters perf;
  std::size_t swept = 0;
  for (const topo::PrefixRecord& rec : eco.prefixes()) {
    if (swept == prefix_count) break;
    if (rec.covered) continue;
    ++swept;

    network.announce(rec.origin, rec.prefix);
    const ConvergenceStats announce = network.run_to_convergence();
    network.set_origin_prepend(rec.origin, rec.prefix, 2);
    const ConvergenceStats prepend = network.run_to_convergence();
    network.withdraw(rec.origin, rec.prefix);
    const ConvergenceStats withdraw = network.run_to_convergence();
    if (Speaker* origin = network.speaker(rec.origin)) {
      origin->export_policy().default_prepend = 0;
    }
    for (const ConvergenceStats& stats : {announce, prepend, withdraw}) {
      out.stage_stats.push_back(stats.messages_delivered);
      out.stage_stats.push_back(stats.best_changes);
      out.stage_stats.push_back(stats.converged_at);
      perf += stats.perf;
    }
    network.clear_prefix(rec.prefix);
  }

  snapshot_log(network, out);
  out.interned_paths = network.paths().size();
  out.parallel_rounds = perf.parallel_rounds;
  out.avg_probe_length = perf.avg_probe_length();
  return out;
}

TEST(NetworkParallel, ShardedSweepBitIdenticalToSerial) {
  const topo::Ecosystem eco = make_world();
  const Observation serial = run_sweep(eco, 1, 6);
  ASSERT_FALSE(serial.log_lines.empty());
  ASSERT_EQ(serial.parallel_rounds, 0u);

  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const Observation sharded = run_sweep(eco, workers, 6);
    // The engine must actually have taken the sharded path, or this test
    // proves nothing.
    EXPECT_GT(sharded.parallel_rounds, 0u) << "workers=" << workers;
    EXPECT_EQ(serial.stage_stats, sharded.stage_stats)
        << "workers=" << workers;
    EXPECT_EQ(serial.log_lines, sharded.log_lines) << "workers=" << workers;
    // Canonical-order pending resolution must reproduce the serial intern
    // sequence exactly (same count; ids are compared implicitly by the
    // suppression state that shaped stage_stats and the log).
    EXPECT_EQ(serial.interned_paths, sharded.interned_paths)
        << "workers=" << workers;
  }
}

TEST(NetworkParallel, VantageRibsMatchAcrossWorkerCounts) {
  const topo::Ecosystem eco = make_world();

  // Converge one announced prefix and compare every collector vantage's
  // selected path (contents, not ids) across worker counts.
  auto vantage_paths = [&](std::size_t workers) {
    BgpNetwork network(99);
    eco.build_network(network);
    network.set_workers(workers);
    const topo::PrefixRecord* rec = nullptr;
    for (const topo::PrefixRecord& r : eco.prefixes()) {
      if (!r.covered) {
        rec = &r;
        break;
      }
    }
    network.announce(rec->origin, rec->prefix);
    network.run_to_convergence();
    std::vector<std::string> out;
    for (const net::Asn peer : eco.collector_peers()) {
      const Speaker* s = network.speaker(peer);
      const Route* best = s == nullptr ? nullptr : s->best(rec->prefix);
      out.push_back(best == nullptr ? "-"
                                    : network.paths().to_string(best->path));
    }
    return out;
  };

  const auto serial = vantage_paths(1);
  EXPECT_EQ(serial, vantage_paths(2));
  EXPECT_EQ(serial, vantage_paths(8));
}

TEST(NetworkParallel, PartialRunMatchesSerialAtDeadline) {
  const topo::Ecosystem eco = make_world();

  // Stop mid-convergence: the frontier of undelivered messages and the
  // clock must agree with serial, then finishing the run must land on the
  // same converged state.
  auto partial = [&](std::size_t workers) {
    BgpNetwork network(7);
    eco.build_network(network);
    network.set_workers(workers);
    const topo::PrefixRecord* rec = nullptr;
    for (const topo::PrefixRecord& r : eco.prefixes()) {
      if (!r.covered) {
        rec = &r;
        break;
      }
    }
    network.announce(rec->origin, rec->prefix);
    const ConvergenceStats mid = network.run_until(network.clock().now() + 40);
    std::vector<std::uint64_t> out{mid.messages_delivered, mid.best_changes,
                                   static_cast<std::uint64_t>(mid.converged_at),
                                   network.pending_messages()};
    const ConvergenceStats rest = network.run_to_convergence();
    out.push_back(rest.messages_delivered);
    out.push_back(rest.best_changes);
    out.push_back(static_cast<std::uint64_t>(rest.converged_at));
    return out;
  };

  const auto serial = partial(1);
  EXPECT_EQ(serial, partial(2));
  EXPECT_EQ(serial, partial(8));
}

TEST(NetworkParallel, ProbeLengthsStayHealthyUnderSharding) {
  // Pre-sized topology maps + per-round overlays must keep the
  // open-addressing tables healthy: a probe-length regression here means
  // a hash or reservation change broke clustering.
  const topo::Ecosystem eco = make_world();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    const Observation obs = run_sweep(eco, workers, 4);
    EXPECT_GT(obs.avg_probe_length, 0.0);
    EXPECT_LT(obs.avg_probe_length, 2.0) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace re::bgp
