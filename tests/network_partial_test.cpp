// Tests for partial propagation (run_until), import neighbor rejection,
// and damping behaviour at network level.
#include <gtest/gtest.h>

#include "bgp/network.h"

namespace re::bgp {
namespace {

using net::Asn;
using net::Prefix;

const Prefix kPrefix = *Prefix::parse("163.253.63.0/24");

// A four-hop chain: origin(1) <- 2 <- 3 <- 4 <- 5.
struct ChainFixture {
  BgpNetwork network{9};
  ChainFixture() {
    network.connect_transit(Asn{2}, Asn{1});
    network.connect_transit(Asn{3}, Asn{2});
    network.connect_transit(Asn{4}, Asn{3});
    network.connect_transit(Asn{5}, Asn{4});
  }
};

TEST(RunUntil, DeliversOnlyUpToDeadline) {
  ChainFixture f;
  f.network.announce(Asn{1}, kPrefix);
  // Deliver only the first hop's worth of messages.
  f.network.run_until(f.network.clock().now() + 1);
  // The far end of the chain cannot have the route yet.
  EXPECT_EQ(f.network.speaker(Asn{5})->best(kPrefix), nullptr);
  EXPECT_FALSE(f.network.converged());
  // Finishing the run delivers the rest.
  f.network.run_to_convergence();
  EXPECT_NE(f.network.speaker(Asn{5})->best(kPrefix), nullptr);
  EXPECT_TRUE(f.network.converged());
}

TEST(RunUntil, ZeroDeadlineDeliversNothing) {
  ChainFixture f;
  f.network.announce(Asn{1}, kPrefix);
  const std::size_t pending = f.network.pending_messages();
  ASSERT_GT(pending, 0u);
  const ConvergenceStats stats = f.network.run_until(f.network.clock().now());
  EXPECT_EQ(stats.messages_delivered, 0u);
  EXPECT_EQ(f.network.pending_messages(), pending);
}

TEST(RunUntil, IncrementalDeliveryMatchesFullRun) {
  // Delivering in small time slices converges to the same state as one
  // run_to_convergence call.
  ChainFixture full, sliced;
  full.network.announce(Asn{1}, kPrefix);
  full.network.run_to_convergence();

  sliced.network.announce(Asn{1}, kPrefix);
  while (!sliced.network.converged()) {
    sliced.network.run_until(sliced.network.clock().now() + 3);
    sliced.network.clock().advance(3);
  }
  for (const Asn as : {Asn{2}, Asn{3}, Asn{4}, Asn{5}}) {
    const Route* a = full.network.speaker(as)->best(kPrefix);
    const Route* b = sliced.network.speaker(as)->best(kPrefix);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->path, b->path) << as.to_string();
  }
}

TEST(ImportPolicy, RejectNeighborsDropsSession) {
  BgpNetwork network(3);
  network.connect_transit(Asn{10}, Asn{1});
  network.connect_transit(Asn{10}, Asn{42});
  network.connect_transit(Asn{20}, Asn{1});
  network.connect_transit(Asn{20}, Asn{42});
  network.speaker(Asn{42})->import_policy().reject_neighbors.push_back(Asn{10});
  network.announce(Asn{1}, kPrefix);
  network.run_to_convergence();
  const Route* best = network.speaker(Asn{42})->best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, Asn{20});
  // Only the non-rejected session contributes candidates.
  EXPECT_EQ(network.speaker(Asn{42})->candidates(kPrefix).size(), 1u);
}

TEST(NetworkDamping, FlappingOriginGetsSuppressedAtDampingAs) {
  // edge(42) <- transit(10) <- origin(1), and a stable longer path
  // edge(42) <- transit(20) <- mid(21) <- origin(1).
  BgpNetwork network(5);
  network.connect_transit(Asn{10}, Asn{1});
  network.connect_transit(Asn{10}, Asn{42});
  network.connect_transit(Asn{21}, Asn{1});
  network.connect_transit(Asn{20}, Asn{21});
  network.connect_transit(Asn{20}, Asn{42});
  Speaker* edge = network.speaker(Asn{42});
  edge->damping().enabled = true;

  network.announce(Asn{1}, kPrefix);
  network.run_to_convergence();
  ASSERT_EQ(edge->best(kPrefix)->learned_from, Asn{10});  // shorter path

  // Flap the announcement rapidly; the short path's updates accumulate
  // penalty at the edge.
  for (int i = 0; i < 5; ++i) {
    network.withdraw(Asn{1}, kPrefix);
    network.run_to_convergence();
    network.announce(Asn{1}, kPrefix);
    network.run_to_convergence();
  }
  // Both sessions flapped; after penalties, the edge may suppress one or
  // both. Crucially, an hour later everything is usable again.
  network.clock().advance(net::kHour);
  network.settle(kPrefix);
  ASSERT_NE(edge->best(kPrefix), nullptr);
  EXPECT_EQ(edge->best(kPrefix)->learned_from, Asn{10});
}

TEST(NetworkDamping, SlowPacedChangesNeverSuppress) {
  // The §3.3 design point at network level: hour-spaced prepend changes
  // never push a damping AS into suppression.
  BgpNetwork network(5);
  network.connect_transit(Asn{10}, Asn{1});
  network.connect_transit(Asn{10}, Asn{42});
  Speaker* edge = network.speaker(Asn{42});
  edge->damping().enabled = true;

  network.announce(Asn{1}, kPrefix);
  network.run_to_convergence();
  for (std::uint32_t p = 1; p <= 8; ++p) {
    network.clock().advance(net::kHour);
    network.set_origin_prepend(Asn{1}, kPrefix, p);
    network.run_to_convergence();
    ASSERT_NE(edge->best(kPrefix), nullptr) << "change " << p;
    EXPECT_EQ(network.paths().count(edge->best(kPrefix)->path, Asn{1}), p + 1);
  }
}

}  // namespace
}  // namespace re::bgp
