// Tests for BgpNetwork: propagation, convergence, prepend changes,
// failures, collectors, and determinism.
#include <gtest/gtest.h>

#include "bgp/network.h"

namespace re::bgp {
namespace {

using net::Asn;
using net::Prefix;

const Prefix kPrefix = *Prefix::parse("163.253.63.0/24");

// A small line topology: origin(1) <- transit(2) <- edge(3), with a second
// path origin(1) <- transit(4) <- edge(3).
struct DiamondFixture {
  BgpNetwork network{1};
  DiamondFixture() {
    network.connect_transit(Asn{2}, Asn{1});  // 2 provides transit to 1
    network.connect_transit(Asn{4}, Asn{1});
    network.connect_transit(Asn{2}, Asn{3});
    network.connect_transit(Asn{4}, Asn{3});
  }
};

TEST(BgpNetwork, PropagatesAnnouncementToAll) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  const ConvergenceStats stats = f.network.run_to_convergence();
  EXPECT_GT(stats.messages_delivered, 0u);
  for (const Asn asn : {Asn{2}, Asn{3}, Asn{4}}) {
    EXPECT_NE(f.network.speaker(asn)->best(kPrefix), nullptr)
        << asn.to_string();
  }
  // Edge AS 3 has a two-hop path through one of its providers.
  EXPECT_EQ(f.network.speaker(Asn{3})->best(kPrefix)->path_length, 2u);
}

TEST(BgpNetwork, WithdrawRemovesEverywhere) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  f.network.withdraw(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  for (const Asn asn : {Asn{2}, Asn{3}, Asn{4}}) {
    EXPECT_EQ(f.network.speaker(asn)->best(kPrefix), nullptr)
        << asn.to_string();
  }
}

TEST(BgpNetwork, ValleyFreePropagation) {
  // peer1 -- origin's provider chain: a peer of a transit must not hear
  // provider-learned routes.
  BgpNetwork network(1);
  network.connect_transit(Asn{10}, Asn{1});   // 10 provides to origin 1
  network.connect_transit(Asn{20}, Asn{10});  // 20 provides to 10
  network.connect_peering(Asn{20}, Asn{30});  // 20 peers 30
  network.connect_peering(Asn{30}, Asn{40});  // 30 peers 40
  network.announce(Asn{1}, kPrefix);
  network.run_to_convergence();
  // 30 hears it (customer route of 20 exported to peer).
  EXPECT_NE(network.speaker(Asn{30})->best(kPrefix), nullptr);
  // 40 must NOT hear it from 30 (peer route to a peer = valley).
  EXPECT_EQ(network.speaker(Asn{40})->best(kPrefix), nullptr);
}

TEST(BgpNetwork, PrependChangePropagates) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  const std::size_t before =
      f.network.speaker(Asn{3})->best(kPrefix)->path_length;
  f.network.set_origin_prepend(Asn{1}, kPrefix, 3);
  f.network.run_to_convergence();
  const std::size_t after =
      f.network.speaker(Asn{3})->best(kPrefix)->path_length;
  EXPECT_EQ(after, before + 3);
}

TEST(BgpNetwork, PrependChangeIsIdempotent) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  f.network.set_origin_prepend(Asn{1}, kPrefix, 2);
  f.network.run_to_convergence();
  // Re-applying the same prepend level generates no new messages.
  f.network.set_origin_prepend(Asn{1}, kPrefix, 2);
  EXPECT_TRUE(f.network.converged());
}

TEST(BgpNetwork, EqualPrefEdgeSwitchesWithPrepends) {
  // The paper's core mechanism at network scale: an equal-localpref edge
  // flips between two providers as prepends change relative path lengths.
  BgpNetwork network(7);
  // R&E side: origin 100 -> chain 101 -> edge; commodity: origin 200 -> edge.
  network.connect_transit(Asn{101}, Asn{100}, /*re_edge=*/true);
  network.connect_transit(Asn{101}, Asn{42}, /*re_edge=*/true);
  network.connect_transit(Asn{200}, Asn{42}, /*re_edge=*/false);
  Speaker* edge = network.speaker(Asn{42});
  edge->import_policy().re_stance = ReStance::kEqualPref;

  network.speaker(Asn{100})->export_policy().default_prepend = 4;
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(Asn{100}, kPrefix, re_only);
  network.announce(Asn{200}, kPrefix);
  network.run_to_convergence();
  // R&E path [101, 100x5] = 6 vs commodity [200] = 1: commodity wins.
  EXPECT_FALSE(edge->best(kPrefix)->re_edge);

  network.set_origin_prepend(Asn{100}, kPrefix, 0);
  network.set_origin_prepend(Asn{200}, kPrefix, 4);
  network.run_to_convergence();
  // R&E [101, 100] = 2 vs commodity [200x5] = 5: R&E wins.
  EXPECT_TRUE(edge->best(kPrefix)->re_edge);
}

TEST(BgpNetwork, FailAndRestoreSession) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  Speaker* edge = f.network.speaker(Asn{3});
  const Asn used = edge->best(kPrefix)->learned_from;
  const Asn other = used == Asn{2} ? Asn{4} : Asn{2};

  f.network.fail_session(Asn{3}, used, kPrefix);
  f.network.run_to_convergence();
  ASSERT_NE(edge->best(kPrefix), nullptr);
  EXPECT_EQ(edge->best(kPrefix)->learned_from, other);

  f.network.restore_session(Asn{3}, used, kPrefix);
  f.network.run_to_convergence();
  EXPECT_EQ(edge->best(kPrefix)->learned_from, used);
}

TEST(BgpNetwork, FailedSessionDropsInFlightMessages) {
  // The failure must sever the session immediately: an announcement queued
  // on the edge before the failure never reaches the far end.
  BgpNetwork network(1);
  network.connect_transit(Asn{2}, Asn{1});
  network.announce(Asn{1}, kPrefix);  // update to 2 now in flight
  network.fail_session(Asn{2}, Asn{1}, kPrefix);
  network.run_to_convergence();
  EXPECT_EQ(network.speaker(Asn{2})->best(kPrefix), nullptr);

  // The session stays down for later export runs too: re-announcing while
  // failed must not leak across.
  network.withdraw(Asn{1}, kPrefix);
  network.run_to_convergence();
  network.announce(Asn{1}, kPrefix);
  network.run_to_convergence();
  EXPECT_EQ(network.speaker(Asn{2})->best(kPrefix), nullptr);

  network.restore_session(Asn{2}, Asn{1}, kPrefix);
  network.run_to_convergence();
  EXPECT_NE(network.speaker(Asn{2})->best(kPrefix), nullptr);
}

TEST(BgpNetwork, NoUpdateCrossesFailedSession) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  Speaker* edge = f.network.speaker(Asn{3});
  const Asn used = edge->best(kPrefix)->learned_from;
  const Asn other = used == Asn{2} ? Asn{4} : Asn{2};

  f.network.fail_session(Asn{3}, used, kPrefix);
  f.network.run_to_convergence();

  // A routing change upstream triggers fresh exports everywhere; none may
  // cross the failed edge, so AS 3 keeps exactly one candidate.
  f.network.set_origin_prepend(Asn{1}, kPrefix, 2);
  f.network.run_to_convergence();
  const std::vector<Route> candidates = edge->candidates(kPrefix);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates.front().learned_from, other);
}

TEST(BgpNetwork, CollectorRecordsAnnounceAndWithdraw) {
  DiamondFixture f;
  f.network.add_collector_peer(Asn{3});
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  f.network.withdraw(Asn{1}, kPrefix);
  f.network.run_to_convergence();

  const auto& updates = f.network.update_log().updates();
  ASSERT_GE(updates.size(), 2u);
  EXPECT_FALSE(updates.front().withdraw);
  EXPECT_EQ(updates.front().peer, Asn{3});
  // Collector paths include the peer's own ASN.
  EXPECT_EQ(f.network.update_log().path_span(updates.front()).front(), Asn{3});
  EXPECT_EQ(f.network.update_log().path_span(updates.front()).back(), Asn{1});
  EXPECT_TRUE(updates.back().withdraw);
}

TEST(BgpNetwork, VrfSplitPeerFeedsCommodityView) {
  // Peer prefers its R&E route but exports the commodity VRF (§4.1.1).
  BgpNetwork network(3);
  network.connect_transit(Asn{101}, Asn{100}, /*re_edge=*/true);  // R&E origin
  network.connect_transit(Asn{101}, Asn{42}, /*re_edge=*/true);
  network.connect_transit(Asn{201}, Asn{200});                 // commodity origin
  network.connect_transit(Asn{201}, Asn{42});
  Speaker* edge = network.speaker(Asn{42});
  edge->import_policy().re_stance = ReStance::kPreferRe;
  edge->set_vrf_split_export(true);
  network.add_collector_peer(Asn{42});

  network.announce(Asn{200}, kPrefix);
  network.run_to_convergence();
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(Asn{100}, kPrefix, re_only);
  network.run_to_convergence();

  // Edge forwards via R&E...
  EXPECT_TRUE(edge->best(kPrefix)->re_edge);
  // ...but the collector last saw the commodity origin.
  const auto rib = network.update_log().rib_at(kPrefix, network.clock().now());
  ASSERT_TRUE(rib.count(Asn{42}));
  EXPECT_EQ(rib.at(Asn{42}).origin(), Asn{200});
}

TEST(BgpNetwork, ReOnlyAnnouncementInvisibleToCommodity) {
  BgpNetwork network(5);
  network.connect_transit(Asn{10}, Asn{1}, /*re_edge=*/true);
  network.connect_transit(Asn{10}, Asn{2}, /*re_edge=*/true);
  network.connect_transit(Asn{20}, Asn{10}, /*re_edge=*/false);  // commodity provider
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(Asn{1}, kPrefix, re_only);
  network.run_to_convergence();
  EXPECT_NE(network.speaker(Asn{2})->best(kPrefix), nullptr);
  EXPECT_EQ(network.speaker(Asn{20})->best(kPrefix), nullptr);
}

TEST(BgpNetwork, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    BgpNetwork network(seed);
    network.connect_transit(Asn{2}, Asn{1});
    network.connect_transit(Asn{4}, Asn{1});
    network.connect_transit(Asn{2}, Asn{3});
    network.connect_transit(Asn{4}, Asn{3});
    network.add_collector_peer(Asn{3});
    network.announce(Asn{1}, kPrefix);
    network.run_to_convergence();
    std::string log;
    for (const auto& u : network.update_log().updates()) {
      log += std::to_string(u.time) + ":" +
             network.update_log().paths().to_string(u.path) + ";";
    }
    return log;
  };
  EXPECT_EQ(run(77), run(77));
}

TEST(BgpNetwork, ClearPrefixDropsAllState) {
  DiamondFixture f;
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  f.network.clear_prefix(kPrefix);
  for (const Asn asn : {Asn{1}, Asn{2}, Asn{3}, Asn{4}}) {
    EXPECT_EQ(f.network.speaker(asn)->best(kPrefix), nullptr);
  }
  // A fresh announcement works normally afterwards.
  f.network.announce(Asn{1}, kPrefix);
  f.network.run_to_convergence();
  EXPECT_NE(f.network.speaker(Asn{3})->best(kPrefix), nullptr);
}

TEST(BgpNetwork, ConvergenceClockAdvances) {
  DiamondFixture f;
  const net::SimTime before = f.network.clock().now();
  f.network.announce(Asn{1}, kPrefix);
  const ConvergenceStats stats = f.network.run_to_convergence();
  EXPECT_GT(stats.converged_at, before);
  EXPECT_TRUE(f.network.converged());
}

TEST(BgpNetwork, AddSpeakerIdempotent) {
  BgpNetwork network(1);
  Speaker& a = network.add_speaker(Asn{5});
  Speaker& b = network.add_speaker(Asn{5});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(network.speaker_count(), 1u);
}

}  // namespace
}  // namespace re::bgp
