// The observability subsystem: metrics registry semantics, histogram
// quantiles against a sorted-vector oracle, per-thread trace rings
// (wraparound + drop accounting), multithreaded span emission into a
// well-formed Chrome trace, and the determinism contract — bit-identical
// digests with tracing on, serial or sharded.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bgp/network.h"
#include "io/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/thread_pool.h"
#include "topology/ecosystem.h"

namespace re::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "r");
  EXPECT_NE(in, nullptr) << path;
  std::string text;
  char buffer[4096];
  std::size_t n = 0;
  while (in != nullptr &&
         (n = std::fread(buffer, 1, sizeof buffer, in)) > 0) {
    text.append(buffer, n);
  }
  if (in != nullptr) std::fclose(in);
  return text;
}

TEST(ObsMetrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(1.0);  // smaller: must not win
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  g.set(3.0);  // plain set is last-wins, even downward
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
}

TEST(ObsMetrics, RegistryReturnsStableIdempotentReferences) {
  auto& reg = registry();
  Counter& c1 = reg.counter("obs_test.idempotent");
  Counter& c2 = reg.counter("obs_test.idempotent");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);

  Histogram& h1 = reg.histogram("obs_test.idempotent_hist");
  Histogram& h2 = reg.histogram("obs_test.idempotent_hist");
  EXPECT_EQ(&h1, &h2);

  const std::string dump = reg.render();
  EXPECT_NE(dump.find("obs_test.idempotent"), std::string::npos);
}

TEST(ObsMetrics, HistogramBucketBoundsContainTheirValues) {
  for (const std::uint64_t v :
       {0ull, 1ull, 15ull, 16ull, 17ull, 63ull, 64ull, 1000ull, 4095ull,
        1ull << 20, (1ull << 40) + 12345, ~0ull}) {
    const std::size_t index = Histogram::bucket_index(v);
    ASSERT_LT(index, Histogram::kBucketCount);
    EXPECT_LE(Histogram::bucket_lower(index), v) << v;
    EXPECT_GE(Histogram::bucket_upper(index), v) << v;
  }
  // Bucket ranges tile the axis: each upper is the next lower minus one.
  for (std::size_t i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::bucket_upper(i) + 1, Histogram::bucket_lower(i + 1))
        << i;
  }
}

TEST(ObsMetrics, HistogramIsExactBelowTheLinearRange) {
  Histogram h;
  std::vector<std::uint64_t> oracle;
  for (std::uint64_t v = 0; v < 16; ++v) {
    for (std::uint64_t k = 0; k <= v; ++k) {  // v+1 copies of v
      h.record(v);
      oracle.push_back(v);
    }
  }
  std::sort(oracle.begin(), oracle.end());
  for (const double q : {0.01, 0.25, 0.50, 0.75, 0.95, 0.99, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(oracle.size()) + 0.999999);
    rank = std::min(std::max<std::size_t>(rank, 1), oracle.size());
    EXPECT_EQ(h.quantile(q), oracle[rank - 1]) << "q=" << q;
  }
  EXPECT_EQ(h.count(), oracle.size());
  EXPECT_EQ(h.max(), 15u);
}

TEST(ObsMetrics, HistogramQuantilesTrackSortedOracleWithin25Percent) {
  // Deterministic xorshift stream spanning several octaves.
  Histogram h;
  std::vector<std::uint64_t> oracle;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t v = x % 1000000;  // 0 .. 1e6, all octaves below 2^20
    h.record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (const double q : {0.50, 0.90, 0.95, 0.99}) {
    std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(oracle.size()) + 0.999999);
    rank = std::min(std::max<std::size_t>(rank, 1), oracle.size());
    const std::uint64_t truth = oracle[rank - 1];
    const std::uint64_t reported = h.quantile(q);
    // The reported value is the upper bound of the bucket holding the
    // true sample: never below it, never more than a quarter above.
    EXPECT_GE(reported, truth) << "q=" << q;
    EXPECT_LE(reported, truth + truth / 4 + 1) << "q=" << q;
  }
  EXPECT_EQ(h.sum(), [&] {
    std::uint64_t s = 0;
    for (const std::uint64_t v : oracle) s += v;
    return s;
  }());
}

TEST(ObsTrace, DisabledSessionIsInertAndSpansAreFree) {
  TraceSession session("");
  EXPECT_FALSE(session.enabled());
  EXPECT_FALSE(trace_enabled());
  const std::uint64_t before = trace_thread_pushed();
  {
    RE_SPAN("obs_test.noop");
    RE_SPAN_ARG("obs_test.noop_arg", "n", 1);
  }
  EXPECT_EQ(trace_thread_pushed(), before);
  const FlushStats stats = session.finish();
  EXPECT_EQ(stats.events, 0u);
}

TEST(ObsTrace, RingWraparoundKeepsNewestAndCountsDrops) {
  // Small capacity applies to buffers registered after the call, so the
  // emitting thread must be fresh.
  trace_set_buffer_capacity(8);
  const std::string path = temp_path("obs_wrap_trace.json");
  TraceSession session(path);
  ASSERT_TRUE(session.enabled());

  std::uint64_t pushed_in_thread = 0;
  std::thread emitter([&] {
    set_thread_name("wrap-emitter");
    for (int i = 0; i < 20; ++i) {
      RE_SPAN("obs_test.wrap");
    }
    pushed_in_thread = trace_thread_pushed();
  });
  emitter.join();
  trace_set_buffer_capacity(65536);  // restore for later tests

  EXPECT_EQ(pushed_in_thread, 20u);
  const FlushStats stats = session.finish();
  // 20 pushed into an 8-slot ring: 8 survive, 12 dropped (plus whatever
  // the main thread's ring held — it only adds, never subtracts).
  EXPECT_GE(stats.dropped, 12u);
  EXPECT_GE(stats.events, 8u);
  const std::string text = slurp(path);
  EXPECT_NE(text.find("wrap-emitter"), std::string::npos);
}

TEST(ObsTrace, MultithreadedSpansProduceAValidChromeTrace) {
  const std::string path = temp_path("obs_mt_trace.json");
  TraceSession session(path);
  ASSERT_TRUE(session.enabled());
  {
    RE_SPAN_ARG("obs_test.main_span", "n", 7);
  }
  // Two explicit emitters: lanes are deterministic regardless of how a
  // pool would schedule work on a one-core host.
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([t] {
      set_thread_name("emitter-" + std::to_string(t));
      for (int i = 0; i < 50; ++i) {
        RE_SPAN_ARG("obs_test.mt_span", "i", static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  const FlushStats stats = session.finish();
  EXPECT_GE(stats.events, 101u);  // 1 main + 100 emitter spans
  EXPECT_GE(stats.threads, 3u);
  EXPECT_EQ(stats.dropped, 0u);

  // The file must parse as JSON and carry complete ("ph":"X") events on
  // at least two distinct lanes, plus thread_name metadata.
  const auto parsed = io::parse_json(slurp(path));
  ASSERT_TRUE(parsed.has_value());
  const io::JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::size_t complete = 0, metadata = 0;
  std::vector<double> lanes;
  for (const io::JsonValue& e : events->as_array()) {
    ASSERT_TRUE(e.is_object());
    const io::JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "X") {
      ++complete;
      const io::JsonValue* tid = e.find("tid");
      ASSERT_NE(tid, nullptr);
      if (std::find(lanes.begin(), lanes.end(), tid->as_number()) ==
          lanes.end()) {
        lanes.push_back(tid->as_number());
      }
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
    } else if (ph->as_string() == "M") {
      ++metadata;
    }
  }
  EXPECT_GE(complete, 101u);
  EXPECT_GE(lanes.size(), 3u);
  EXPECT_GE(metadata, 3u);
}

TEST(ObsTraceDeathTest, UnwritableTracePathAbortsUpFront) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(TraceSession("/nonexistent-dir-obs-test/trace.json"),
              ::testing::ExitedWithCode(2), "cannot open trace file");
}

// The determinism contract: tracing only reads wall clocks and writes
// telemetry buffers, so state digests are bit-identical with tracing on
// or off, serial or round-sharded. This is the gate that lets every
// digest-checked pipeline run with --trace without re-validating.
std::uint64_t sweep_digest(const topo::Ecosystem& eco, std::size_t workers) {
  bgp::BgpNetwork network(77001);
  eco.build_network(network);
  network.set_workers(workers);
  std::size_t swept = 0;
  for (const topo::PrefixRecord& rec : eco.prefixes()) {
    if (swept == 6) break;
    if (rec.covered) continue;
    ++swept;
    network.announce(rec.origin, rec.prefix);
    network.run_to_convergence();
    network.set_origin_prepend(rec.origin, rec.prefix, 2);
    network.run_to_convergence();
  }
  return network.state_digest();
}

TEST(ObsTrace, SerialAndShardedDigestsAreBitIdenticalWithTracingOn) {
  topo::EcosystemParams params;
  params = params.scaled(0.05);
  params.seed = 20250808;
  const topo::Ecosystem eco = topo::Ecosystem::generate(params);

  const std::uint64_t untraced = sweep_digest(eco, 1);

  const std::string path = temp_path("obs_digest_trace.json");
  TraceSession session(path);
  ASSERT_TRUE(session.enabled());
  const std::uint64_t traced_serial = sweep_digest(eco, 1);
  const std::uint64_t traced_sharded = sweep_digest(eco, 3);
  const FlushStats stats = session.finish();

  EXPECT_EQ(traced_serial, untraced);
  EXPECT_EQ(traced_sharded, untraced);
  // And the trace actually recorded the runs it was watching.
  EXPECT_GT(stats.events, 0u);
}

}  // namespace
}  // namespace re::obs
