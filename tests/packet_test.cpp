// Tests for the probe-packet codec: checksums, header round-trips, probe
// construction, response matching, and corruption rejection.
#include <gtest/gtest.h>

#include "probing/packet.h"

namespace re::probing {
namespace {

const net::IPv4Address kSource = *net::IPv4Address::parse("163.253.63.63");
const net::IPv4Address kTarget = *net::IPv4Address::parse("128.9.1.1");

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0xab, 0xcd, 0x12, 0x00};
  const std::uint8_t odd[] = {0xab, 0xcd, 0x12};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, SelfVerifies) {
  // A block with its own checksum embedded sums to zero.
  std::uint8_t data[] = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00,
                         0x40, 0x01, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                         0x0a, 0x00, 0x00, 0x02};
  const std::uint16_t checksum = internet_checksum(data);
  data[10] = static_cast<std::uint8_t>(checksum >> 8);
  data[11] = static_cast<std::uint8_t>(checksum);
  EXPECT_EQ(internet_checksum(data), 0);
}

TEST(Ipv4Header, EncodeDecodeRoundTrip) {
  Ipv4Header header;
  header.ttl = 63;
  header.protocol = 6;
  header.source = kSource;
  header.destination = kTarget;
  header.identification = 4242;
  header.total_length = 40;
  const auto bytes = header.encode();
  const auto decoded = Ipv4Header::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ttl, 63);
  EXPECT_EQ(decoded->protocol, 6);
  EXPECT_EQ(decoded->source, kSource);
  EXPECT_EQ(decoded->destination, kTarget);
  EXPECT_EQ(decoded->identification, 4242);
  EXPECT_EQ(decoded->total_length, 40);
}

TEST(Ipv4Header, RejectsCorruption) {
  Ipv4Header header;
  header.source = kSource;
  header.destination = kTarget;
  auto bytes = header.encode();
  bytes[15] ^= 0xff;  // flip a source-address byte
  EXPECT_FALSE(Ipv4Header::decode(bytes).has_value());
}

TEST(Ipv4Header, RejectsTruncationAndWrongVersion) {
  Ipv4Header header;
  auto bytes = header.encode();
  EXPECT_FALSE(
      Ipv4Header::decode(std::span(bytes).subspan(0, 10)).has_value());
  bytes[0] = 0x55;  // version 5
  EXPECT_FALSE(Ipv4Header::decode(bytes).has_value());
}

TEST(IcmpMessage, EchoRoundTrip) {
  IcmpMessage echo;
  echo.type = IcmpType::kEchoRequest;
  echo.identifier = 77;
  echo.sequence = 1234;
  const auto bytes = echo.encode();
  const auto decoded = IcmpMessage::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, IcmpType::kEchoRequest);
  EXPECT_EQ(decoded->identifier, 77);
  EXPECT_EQ(decoded->sequence, 1234);
}

TEST(IcmpMessage, RejectsBadChecksum) {
  IcmpMessage echo;
  auto bytes = echo.encode();
  bytes[5] ^= 0x01;
  EXPECT_FALSE(IcmpMessage::decode(bytes).has_value());
}

TEST(TcpHeader, SynRoundTrip) {
  TcpHeader tcp;
  tcp.source_port = 33000;
  tcp.destination_port = 443;
  tcp.sequence = 0xdeadbeef;
  tcp.syn = true;
  const auto bytes = tcp.encode();
  const auto decoded = TcpHeader::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source_port, 33000);
  EXPECT_EQ(decoded->destination_port, 443);
  EXPECT_EQ(decoded->sequence, 0xdeadbeefu);
  EXPECT_TRUE(decoded->syn);
  EXPECT_FALSE(decoded->ack);
  EXPECT_FALSE(decoded->rst);
}

TEST(TcpHeader, FlagsEncodeIndependently) {
  TcpHeader tcp;
  tcp.syn = tcp.ack = true;
  const auto decoded = TcpHeader::decode(tcp.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->syn);
  EXPECT_TRUE(decoded->ack);
  EXPECT_FALSE(decoded->fin);
}

TEST(UdpHeader, RoundTrip) {
  UdpHeader udp;
  udp.source_port = 33001;
  udp.destination_port = 53;
  udp.length = 8;
  const auto decoded = UdpHeader::decode(udp.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->source_port, 33001);
  EXPECT_EQ(decoded->destination_port, 53);
}

// ------------------------------------------------------------- factory

class PacketFactoryTest : public ::testing::Test {
 protected:
  PacketFactory factory_{kSource, 0x4a17};
};

TEST_F(PacketFactoryTest, IcmpProbeResponseMatches) {
  const ProbePacket probe =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  EXPECT_EQ(probe.bytes.size(), Ipv4Header::kSize + IcmpMessage::kSize);
  const auto response = factory_.make_response(probe);
  EXPECT_TRUE(factory_.matches(probe, response));
}

TEST_F(PacketFactoryTest, TcpProbeResponseMatches) {
  const ProbePacket probe =
      factory_.make_probe({kTarget, ProbeMethod::kTcpSyn, 443, {}});
  const auto tcp =
      TcpHeader::decode(std::span(probe.bytes).subspan(Ipv4Header::kSize));
  ASSERT_TRUE(tcp.has_value());
  EXPECT_TRUE(tcp->syn);
  EXPECT_EQ(tcp->destination_port, 443);
  const auto response = factory_.make_response(probe);
  EXPECT_TRUE(factory_.matches(probe, response));
  // The response is a SYN-ACK acknowledging our sequence + 1.
  const auto rtcp =
      TcpHeader::decode(std::span(response).subspan(Ipv4Header::kSize));
  ASSERT_TRUE(rtcp.has_value());
  EXPECT_EQ(rtcp->acknowledgment, tcp->sequence + 1);
}

TEST_F(PacketFactoryTest, UdpProbeUnreachableMatches) {
  const ProbePacket probe =
      factory_.make_probe({kTarget, ProbeMethod::kUdp, 53, {}});
  const auto response = factory_.make_response(probe);
  // ICMP port unreachable quoting the probe.
  const auto ip = Ipv4Header::decode(response);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->protocol, 1);
  EXPECT_TRUE(factory_.matches(probe, response));
}

TEST_F(PacketFactoryTest, ResponsesToOtherProbesDoNotMatch) {
  const ProbePacket a =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  const ProbePacket b =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  const auto response_b = factory_.make_response(b);
  EXPECT_FALSE(factory_.matches(a, response_b));  // wrong sequence
  EXPECT_TRUE(factory_.matches(b, response_b));
}

TEST_F(PacketFactoryTest, CrossMethodResponsesRejected) {
  const ProbePacket icmp =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  const ProbePacket tcp =
      factory_.make_probe({kTarget, ProbeMethod::kTcpSyn, 80, {}});
  EXPECT_FALSE(factory_.matches(icmp, factory_.make_response(tcp)));
  EXPECT_FALSE(factory_.matches(tcp, factory_.make_response(icmp)));
}

TEST_F(PacketFactoryTest, ResponseToDifferentHostRejected) {
  PacketFactory other(*net::IPv4Address::parse("192.0.2.1"), 0x4a17);
  const ProbePacket probe =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  const auto response = factory_.make_response(probe);
  EXPECT_FALSE(other.matches(probe, response));  // not our address
}

TEST_F(PacketFactoryTest, SequenceNumbersAdvance) {
  const ProbePacket a =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  const ProbePacket b =
      factory_.make_probe({kTarget, ProbeMethod::kIcmpEcho, 0, {}});
  EXPECT_NE(a.match_seq, b.match_seq);
}

TEST_F(PacketFactoryTest, ProbeSourceIsMeasurementAddress) {
  const ProbePacket probe =
      factory_.make_probe({kTarget, ProbeMethod::kUdp, 123, {}});
  const auto ip = Ipv4Header::decode(probe.bytes);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->source, kSource);
  EXPECT_EQ(ip->destination, kTarget);
}

}  // namespace
}  // namespace re::probing
