// Tests for the hash-consed AS-path table: deduplication, prepend
// interning, and id stability across lookup-table rehashes.
#include <gtest/gtest.h>

#include <span>
#include <thread>
#include <vector>

#include "bgp/network.h"
#include "bgp/path_table.h"

namespace re::bgp {
namespace {

using net::Asn;

TEST(PathTable, EmptyPathIsIdZero) {
  PathTable table;
  EXPECT_EQ(table.size(), 1u);  // the empty path is pre-interned
  const PathId empty = table.intern(std::span<const Asn>{});
  EXPECT_TRUE(empty.is_empty_path());
  EXPECT_EQ(empty, PathId{});
  EXPECT_EQ(table.length(empty), 0u);
  EXPECT_TRUE(table.empty(empty));
  EXPECT_EQ(table.first(empty), Asn{});
  EXPECT_EQ(table.origin(empty), Asn{});
  EXPECT_EQ(table.size(), 1u);  // re-interning added nothing
}

TEST(PathTable, InternDeduplicates) {
  PathTable table;
  const PathId a = table.intern(AsPath{Asn{3356}, Asn{396955}});
  const PathId b = table.intern(AsPath{Asn{3356}, Asn{396955}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 2u);  // empty + one real path

  const PathId c = table.intern(AsPath{Asn{396955}, Asn{3356}});  // reversed
  EXPECT_NE(a, c);
  EXPECT_EQ(table.size(), 3u);
}

TEST(PathTable, AccessorsMatchContents) {
  PathTable table;
  const PathId id = table.intern(AsPath{Asn{1}, Asn{2}, Asn{2}, Asn{3}});
  EXPECT_EQ(table.length(id), 4u);
  EXPECT_EQ(table.first(id), Asn{1});
  EXPECT_EQ(table.origin(id), Asn{3});
  EXPECT_TRUE(table.contains(id, Asn{2}));
  EXPECT_FALSE(table.contains(id, Asn{9}));
  EXPECT_EQ(table.count(id, Asn{2}), 2u);
  EXPECT_EQ(table.count(id, Asn{9}), 0u);
  EXPECT_EQ(table.unique_count(id), 3u);
  EXPECT_EQ(table.path(id), (AsPath{Asn{1}, Asn{2}, Asn{2}, Asn{3}}));
  EXPECT_EQ(table.to_string(id), table.path(id).to_string());
}

TEST(PathTable, PrependedInternsCanonically) {
  PathTable table;
  const PathId base = table.intern(AsPath{Asn{2}, Asn{3}});
  const PathId once = table.prepended(base, Asn{1}, 1);
  EXPECT_EQ(table.path(once), (AsPath{Asn{1}, Asn{2}, Asn{3}}));

  // Prepending is intern-on-miss: the same logical result, built either
  // by prepended() or by interning the contents, is the same id.
  const PathId direct = table.intern(AsPath{Asn{1}, Asn{2}, Asn{3}});
  EXPECT_EQ(once, direct);

  // Multi-copy prepend (origin prepending) in one call.
  const PathId triple = table.prepended(base, Asn{1}, 3);
  EXPECT_EQ(table.path(triple), (AsPath{Asn{1}, Asn{1}, Asn{1}, Asn{2}, Asn{3}}));
  EXPECT_EQ(table.count(triple, Asn{1}), 3u);

  // Zero copies is the identity.
  EXPECT_EQ(table.prepended(base, Asn{1}, 0), base);
}

TEST(PathTable, PrependedFromEmptyPath) {
  PathTable table;
  const PathId id = table.prepended(PathId{}, Asn{7}, 2);
  EXPECT_EQ(table.path(id), (AsPath{Asn{7}, Asn{7}}));
}

TEST(PathTable, IdsStableAcrossRehash) {
  // Intern enough distinct paths to force several lookup-table rehashes
  // and arena reallocations; earlier ids must keep resolving to the same
  // contents (ids live inside queued messages and RIB entries).
  PathTable table;
  std::vector<PathId> ids;
  std::vector<AsPath> expected;
  for (std::uint32_t i = 0; i < 4096; ++i) {
    AsPath path{Asn{i + 1}, Asn{(i * 7) % 1000 + 1}, Asn{65000 + (i % 100)}};
    ids.push_back(table.intern(path));
    expected.push_back(path);
  }
  EXPECT_EQ(table.size(), 1u + 4096u);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(table.path(ids[i]), expected[i]) << "path " << i;
    EXPECT_EQ(table.intern(expected[i]), ids[i]) << "path " << i;
  }
  EXPECT_GT(table.arena_bytes(), 4096u * 3u * sizeof(Asn));
}

TEST(PathTable, DedupAcrossSpeakersSharingOneTable) {
  // Speakers of one network share the network's table: the same path
  // announced through a chain is stored once, and each hop's prepend is
  // one new entry — not one per (speaker, message) pair.
  BgpNetwork network(7);
  network.connect_transit(Asn{2}, Asn{1});
  network.connect_transit(Asn{3}, Asn{2});
  network.connect_transit(Asn{4}, Asn{3});
  const net::Prefix prefix = *net::Prefix::parse("163.253.63.0/24");
  network.announce(Asn{1}, prefix);
  network.run_to_convergence();

  PathTable& table = network.paths();
  ASSERT_EQ(&network.speaker(Asn{2})->paths(), &table);
  ASSERT_EQ(&network.speaker(Asn{4})->paths(), &table);

  const Route* at2 = network.speaker(Asn{2})->best(prefix);
  const Route* at3 = network.speaker(Asn{3})->best(prefix);
  const Route* at4 = network.speaker(Asn{4})->best(prefix);
  ASSERT_NE(at2, nullptr);
  ASSERT_NE(at3, nullptr);
  ASSERT_NE(at4, nullptr);
  EXPECT_EQ(table.path(at2->path), (AsPath{Asn{1}}));
  EXPECT_EQ(table.path(at3->path), (AsPath{Asn{2}, Asn{1}}));
  EXPECT_EQ(table.path(at4->path), (AsPath{Asn{3}, Asn{2}, Asn{1}}));

  // Re-announcing produces the same interned ids; the table grows by
  // nothing on the second pass.
  const std::size_t interned = table.size();
  network.withdraw(Asn{1}, prefix);
  network.run_to_convergence();
  network.announce(Asn{1}, prefix);
  network.run_to_convergence();
  EXPECT_EQ(table.size(), interned);
  EXPECT_EQ(table.path(network.speaker(Asn{4})->best(prefix)->path),
            (AsPath{Asn{3}, Asn{2}, Asn{1}}));
}

TEST(PathTable, RouteCacheFilledBySetPath) {
  PathTable table;
  Route r;
  r.set_path(table, table.intern(AsPath{Asn{5}, Asn{6}, Asn{7}}));
  EXPECT_EQ(r.path_length, 3u);
  EXPECT_EQ(r.path_first, Asn{5});
  r.set_path(table, PathId{});
  EXPECT_EQ(r.path_length, 0u);
  EXPECT_EQ(r.path_first, Asn{});
}

TEST(PathStager, DirectModeForwardsToTable) {
  PathTable table;
  PathStager stager(&table);
  const PathId base = table.intern(AsPath{Asn{2}, Asn{1}});
  const PathId direct = stager.prepended(base, Asn{3}, 2);
  EXPECT_FALSE(PathStager::is_pending(direct));
  EXPECT_EQ(direct, table.intern(AsPath{Asn{3}, Asn{3}, Asn{2}, Asn{1}}));
  EXPECT_EQ(stager.prepended(base, Asn{3}, 0), base);
}

TEST(PathStager, StagingKeepsTableUntouchedUntilResolve) {
  PathTable table;
  PathStager stager(&table);
  const PathId base = table.intern(AsPath{Asn{2}, Asn{1}});
  const PathId known = table.intern(AsPath{Asn{3}, Asn{2}, Asn{1}});
  const std::size_t before = table.size();

  stager.begin_staging();
  // Hit: already interned -> real id, no pending entry.
  const PathId hit = stager.prepended(base, Asn{3}, 1);
  EXPECT_FALSE(PathStager::is_pending(hit));
  EXPECT_EQ(hit, known);

  // Miss: staged locally; the shared table must not grow.
  const PathId miss = stager.prepended(base, Asn{9}, 1);
  EXPECT_TRUE(PathStager::is_pending(miss));
  EXPECT_EQ(table.size(), before);

  // Content-equal staged paths share one pending id (duplicate
  // suppression compares ids, so content-equal must mean id-equal).
  EXPECT_EQ(stager.prepended(base, Asn{9}, 1), miss);
  // Pending-aware span sees the staged contents.
  EXPECT_EQ(stager.span(miss).size(), 3u);
  EXPECT_EQ(stager.span(miss).front(), Asn{9});

  const PathId resolved = stager.resolve(miss);
  EXPECT_FALSE(PathStager::is_pending(resolved));
  EXPECT_EQ(table.size(), before + 1);
  EXPECT_EQ(resolved, table.intern(AsPath{Asn{9}, Asn{2}, Asn{1}}));
  // Resolution is memoized and stable.
  EXPECT_EQ(stager.resolve(miss), resolved);
  // Real ids pass through resolve untouched.
  EXPECT_EQ(stager.resolve(base), base);
  stager.end_staging();
}

TEST(PathStager, CanonicalResolutionOrderMatchesSerialInterning) {
  // Two stagers (two round-workers) stage misses in scrambled order; the
  // coordinator resolves them in canonical order. The table must end up
  // exactly as if one serial pass had interned in canonical order: same
  // dense ids, same count.
  PathTable serial_table;
  PathTable sharded;
  const std::vector<AsPath> canonical = {
      AsPath{Asn{10}, Asn{1}}, AsPath{Asn{11}, Asn{1}},
      AsPath{Asn{12}, Asn{1}}, AsPath{Asn{13}, Asn{1}}};
  std::vector<PathId> serial_ids;
  for (const AsPath& p : canonical) serial_ids.push_back(serial_table.intern(p));

  PathStager a(&sharded), b(&sharded);
  a.begin_staging();
  b.begin_staging();
  // Worker A stages 3rd then 1st; worker B stages 4th then 2nd.
  const PathId a3 = a.prepended(sharded.intern(AsPath{Asn{1}}), Asn{12}, 1);
  const PathId a1 = a.prepended(sharded.intern(AsPath{Asn{1}}), Asn{10}, 1);
  const PathId b4 = b.prepended(sharded.intern(AsPath{Asn{1}}), Asn{13}, 1);
  const PathId b2 = b.prepended(sharded.intern(AsPath{Asn{1}}), Asn{11}, 1);
  // Canonical (serial) order: 1, 2, 3, 4.
  const PathId r1 = a.resolve(a1);
  const PathId r2 = b.resolve(b2);
  const PathId r3 = a.resolve(a3);
  const PathId r4 = b.resolve(b4);
  a.end_staging();
  b.end_staging();

  // Both tables interned {1} first, then the four prepended paths, so the
  // dense ids line up one-to-one.
  EXPECT_EQ(sharded.size(), serial_table.size() + 1);  // + the {1} base
  EXPECT_EQ(sharded.to_string(r1), serial_table.to_string(serial_ids[0]));
  EXPECT_EQ(sharded.to_string(r2), serial_table.to_string(serial_ids[1]));
  EXPECT_EQ(sharded.to_string(r3), serial_table.to_string(serial_ids[2]));
  EXPECT_EQ(sharded.to_string(r4), serial_table.to_string(serial_ids[3]));
  EXPECT_LT(r1, r2);
  EXPECT_LT(r2, r3);
  EXPECT_LT(r3, r4);
}

TEST(PathStager, ConcurrentStagingWorkersLeaveTableReadOnly) {
  // The round-worker contract under TSan: many stagers probe and stage
  // against one shared table concurrently; nobody interns until the
  // barrier. Misses stay worker-local, hits agree across workers.
  PathTable table;
  const PathId base = table.intern(AsPath{Asn{2}, Asn{1}});
  const PathId known = table.intern(AsPath{Asn{7}, Asn{2}, Asn{1}});

  constexpr int kWorkers = 8;
  std::vector<PathStager> stagers;
  for (int w = 0; w < kWorkers; ++w) stagers.emplace_back(&table);
  std::vector<PathId> hits(kWorkers), misses(kWorkers);
  {
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        stagers[w].begin_staging();
        for (int i = 0; i < 200; ++i) {
          hits[w] = stagers[w].prepended(base, Asn{7}, 1);
          misses[w] =
              stagers[w].prepended(base, Asn{100 + static_cast<std::uint32_t>(w)}, 1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  EXPECT_EQ(table.size(), 3u);  // untouched: empty + the two pre-interned
  for (int w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(hits[w], known);
    EXPECT_TRUE(PathStager::is_pending(misses[w]));
    const PathId resolved = stagers[w].resolve(misses[w]);
    EXPECT_EQ(table.span(resolved).front(),
              (Asn{100 + static_cast<std::uint32_t>(w)}));
    stagers[w].end_staging();
  }
  EXPECT_EQ(table.size(), 3u + kWorkers);
}

}  // namespace
}  // namespace re::bgp
