// Parameterized robustness sweep: the full pipeline's qualitative shape
// (Table 1 bands, switch monotonicity, validation accuracy) must hold
// across independently generated worlds, not just the calibration seed.
#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/comparator.h"
#include "core/experiment.h"
#include "core/validator.h"
#include "probing/seeds.h"
#include "topology/ecosystem.h"

namespace re::core {
namespace {

struct SweepWorld {
  topo::Ecosystem ecosystem;
  std::vector<PrefixInference> surf, internet2;
  GroundTruthReport truth;
};

SweepWorld run_world(std::uint64_t seed) {
  topo::EcosystemParams params;
  params = params.scaled(0.07);
  params.seed = seed;
  SweepWorld world{topo::Ecosystem::generate(params), {}, {}, {}};
  const probing::SeedDatabase db = probing::SeedDatabase::generate(
      world.ecosystem, probing::SeedGenParams{seed ^ 7, /*rest default*/});
  const probing::SelectionResult selection =
      probing::select_probe_seeds(world.ecosystem, db, seed ^ 11);

  for (const ReExperiment which :
       {ReExperiment::kSurf, ReExperiment::kInternet2}) {
    ExperimentConfig config;
    config.experiment = which;
    config.seed = seed ^ (which == ReExperiment::kSurf ? 501 : 502);
    const ExperimentResult result =
        ExperimentController(world.ecosystem, selection.seeds, config).run();
    auto& out = which == ReExperiment::kSurf ? world.surf : world.internet2;
    out = classify_experiment(result);
  }
  world.truth = validate_against_plant(world.internet2, world.ecosystem);
  return world;
}

class PipelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineSweep, ShapeHolds) {
  const SweepWorld world = run_world(GetParam());

  for (const auto* inferences : {&world.surf, &world.internet2}) {
    const Table1 table = summarize_table1(*inferences);
    ASSERT_GT(table.total_prefixes, 300u);
    // The paper's bands, with slack for small worlds: Always R&E
    // dominates, commodity is the second block, switch is the signal,
    // mixed small, degenerates near zero.
    EXPECT_GT(table.prefix_share(Inference::kAlwaysRe), 0.65);
    EXPECT_LT(table.prefix_share(Inference::kAlwaysCommodity), 0.20);
    EXPECT_GT(table.prefix_share(Inference::kSwitchToRe), 0.02);
    EXPECT_LT(table.prefix_share(Inference::kSwitchToRe), 0.20);
    EXPECT_LT(table.prefix_share(Inference::kMixed), 0.08);
    EXPECT_LT(table.prefix_share(Inference::kOscillating), 0.02);
    EXPECT_LT(table.prefix_share(Inference::kSwitchToCommodity), 0.02);
  }

  // Cross-experiment stability stays high in every world.
  const Table2 table2 = compare_experiments(world.surf, world.internet2);
  ASSERT_GT(table2.comparable(), 200u);
  EXPECT_GT(static_cast<double>(table2.same) / table2.comparable(), 0.90);

  // Ground truth: the method stays accurate in every world.
  ASSERT_GT(world.truth.ases_checked, 50u);
  EXPECT_GT(world.truth.accuracy(), 0.93);
}

TEST_P(PipelineSweep, SwitchRoundsAreValidIndices) {
  const SweepWorld world = run_world(GetParam());
  for (const PrefixInference& p : world.internet2) {
    if (p.inference != Inference::kSwitchToRe) continue;
    ASSERT_TRUE(p.first_re_round.has_value());
    EXPECT_GT(*p.first_re_round, 0);  // round 0 R&E would be Always R&E
    EXPECT_LT(*p.first_re_round, 9);
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, PipelineSweep,
                         ::testing::Values(20250529u, 1u, 777u, 424242u));

}  // namespace
}  // namespace re::core
