// Unit tests for import/export policy: localpref assignment, stances,
// per-neighbor overrides, prepending, and Gao-Rexford export rules.
#include <gtest/gtest.h>

#include "bgp/policy.h"

namespace re::bgp {
namespace {

using net::Asn;

Session make_session(Asn neighbor, Relationship rel, bool re_edge) {
  Session s;
  s.neighbor = neighbor;
  s.relationship = rel;
  s.re_edge = re_edge;
  return s;
}

// ------------------------------------------------------------ ImportPolicy

TEST(ImportPolicy, GaoRexfordBaseOrder) {
  ImportPolicy policy;
  policy.re_stance = ReStance::kEqualPref;
  const auto customer = make_session(Asn{1}, Relationship::kCustomer, false);
  const auto peer = make_session(Asn{2}, Relationship::kPeer, false);
  const auto provider = make_session(Asn{3}, Relationship::kProvider, false);
  EXPECT_GT(policy.local_pref_for(customer), policy.local_pref_for(peer));
  EXPECT_GT(policy.local_pref_for(peer), policy.local_pref_for(provider));
}

TEST(ImportPolicy, PreferReBoostsReProviders) {
  ImportPolicy policy;
  policy.re_stance = ReStance::kPreferRe;
  const auto re = make_session(Asn{1}, Relationship::kProvider, true);
  const auto commodity = make_session(Asn{2}, Relationship::kProvider, false);
  EXPECT_GT(policy.local_pref_for(re), policy.local_pref_for(commodity));
}

TEST(ImportPolicy, EqualStanceAssignsSamePref) {
  ImportPolicy policy;
  policy.re_stance = ReStance::kEqualPref;
  const auto re = make_session(Asn{1}, Relationship::kProvider, true);
  const auto commodity = make_session(Asn{2}, Relationship::kProvider, false);
  EXPECT_EQ(policy.local_pref_for(re), policy.local_pref_for(commodity));
}

TEST(ImportPolicy, PreferCommodityBoostsCommodity) {
  ImportPolicy policy;
  policy.re_stance = ReStance::kPreferCommodity;
  const auto re = make_session(Asn{1}, Relationship::kProvider, true);
  const auto commodity = make_session(Asn{2}, Relationship::kProvider, false);
  EXPECT_LT(policy.local_pref_for(re), policy.local_pref_for(commodity));
}

TEST(ImportPolicy, CustomerRoutesStayOnTopRegardlessOfStance) {
  // Gao-Rexford: the stance bonus never lifts a provider above a customer.
  for (const ReStance stance :
       {ReStance::kPreferRe, ReStance::kEqualPref, ReStance::kPreferCommodity}) {
    ImportPolicy policy;
    policy.re_stance = stance;
    const auto customer = make_session(Asn{1}, Relationship::kCustomer, false);
    const auto re_provider = make_session(Asn{2}, Relationship::kProvider, true);
    EXPECT_GT(policy.local_pref_for(customer), policy.local_pref_for(re_provider));
  }
}

TEST(ImportPolicy, NeighborOverrideWinsOverEverything) {
  // The NIKS configuration (Figure 4): GEANT 102, NORDUnet 50, Arelion 50.
  ImportPolicy policy;
  policy.re_stance = ReStance::kPreferRe;
  policy.neighbor_pref[Asn{20965}] = 102;
  policy.neighbor_pref[Asn{2603}] = 50;
  policy.neighbor_pref[Asn{1299}] = 50;
  const auto geant = make_session(Asn{20965}, Relationship::kProvider, true);
  const auto nordunet = make_session(Asn{2603}, Relationship::kProvider, true);
  const auto arelion = make_session(Asn{1299}, Relationship::kProvider, false);
  EXPECT_EQ(policy.local_pref_for(geant), 102u);
  EXPECT_EQ(policy.local_pref_for(nordunet), 50u);
  EXPECT_EQ(policy.local_pref_for(arelion), 50u);
}

TEST(ImportPolicy, RejectReRoutesFiltersReSessions) {
  ImportPolicy policy;
  policy.reject_re_routes = true;
  EXPECT_FALSE(policy.accepts(make_session(Asn{1}, Relationship::kProvider, true)));
  EXPECT_TRUE(policy.accepts(make_session(Asn{2}, Relationship::kProvider, false)));
}

// ------------------------------------------------------------ ExportPolicy

TEST(ExportPolicy, CommodityPrependAppliesToNonReSessions) {
  ExportPolicy policy;
  policy.commodity_prepend = 2;
  EXPECT_EQ(policy.prepends_for(make_session(Asn{1}, Relationship::kProvider, false)), 2u);
  EXPECT_EQ(policy.prepends_for(make_session(Asn{2}, Relationship::kProvider, true)), 0u);
}

TEST(ExportPolicy, RePrependAppliesToReSessions) {
  ExportPolicy policy;
  policy.re_prepend = 1;
  EXPECT_EQ(policy.prepends_for(make_session(Asn{1}, Relationship::kProvider, true)), 1u);
  EXPECT_EQ(policy.prepends_for(make_session(Asn{2}, Relationship::kProvider, false)), 0u);
}

TEST(ExportPolicy, PrependsCompose) {
  ExportPolicy policy;
  policy.default_prepend = 1;
  policy.commodity_prepend = 2;
  policy.neighbor_prepend[Asn{5}] = 3;
  EXPECT_EQ(policy.prepends_for(make_session(Asn{5}, Relationship::kProvider, false)), 6u);
  EXPECT_EQ(policy.prepends_for(make_session(Asn{6}, Relationship::kProvider, false)), 3u);
}

TEST(ExportPolicy, PathBlockFiltersMatchingPaths) {
  // GEANT's filter: do not carry Internet2 routes to NIKS.
  ExportPolicy policy;
  policy.neighbor_path_block[Asn{3267}] = {Asn{11537}};
  const AsPath via_i2{Asn{20965}, Asn{11537}};
  const AsPath via_surf{Asn{20965}, Asn{1103}, Asn{1125}};
  EXPECT_FALSE(policy.path_allowed(Asn{3267}, via_i2));
  EXPECT_TRUE(policy.path_allowed(Asn{3267}, via_surf));
  // Other neighbors are unaffected.
  EXPECT_TRUE(policy.path_allowed(Asn{1103}, via_i2));
}

// ----------------------------------------------------------- export rules

TEST(ExportRules, LocalRoutesGoEverywhere) {
  const auto to_peer = make_session(Asn{1}, Relationship::kPeer, false);
  const auto to_provider = make_session(Asn{2}, Relationship::kProvider, false);
  const auto to_customer = make_session(Asn{3}, Relationship::kCustomer, false);
  EXPECT_TRUE(export_allowed(nullptr, to_peer, false));
  EXPECT_TRUE(export_allowed(nullptr, to_provider, false));
  EXPECT_TRUE(export_allowed(nullptr, to_customer, false));
}

TEST(ExportRules, CustomerRoutesGoEverywhere) {
  const auto from = make_session(Asn{1}, Relationship::kCustomer, false);
  EXPECT_TRUE(export_allowed(&from, make_session(Asn{2}, Relationship::kPeer, false), false));
  EXPECT_TRUE(export_allowed(&from, make_session(Asn{3}, Relationship::kProvider, false), false));
  EXPECT_TRUE(export_allowed(&from, make_session(Asn{4}, Relationship::kCustomer, false), false));
}

TEST(ExportRules, PeerAndProviderRoutesOnlyToCustomers) {
  const auto from_peer = make_session(Asn{1}, Relationship::kPeer, false);
  const auto from_provider = make_session(Asn{2}, Relationship::kProvider, false);
  const auto to_peer = make_session(Asn{3}, Relationship::kPeer, false);
  const auto to_provider = make_session(Asn{4}, Relationship::kProvider, false);
  const auto to_customer = make_session(Asn{5}, Relationship::kCustomer, false);
  EXPECT_FALSE(export_allowed(&from_peer, to_peer, false));
  EXPECT_FALSE(export_allowed(&from_peer, to_provider, false));
  EXPECT_TRUE(export_allowed(&from_peer, to_customer, false));
  EXPECT_FALSE(export_allowed(&from_provider, to_peer, false));
  EXPECT_FALSE(export_allowed(&from_provider, to_provider, false));
  EXPECT_TRUE(export_allowed(&from_provider, to_customer, false));
}

TEST(ExportRules, ReBackbonesStitchPeerNrens) {
  // §2.1: Internet2 exports routes between peer NRENs. The extension only
  // applies when both sessions are on the R&E fabric.
  const auto from_re_peer = make_session(Asn{1}, Relationship::kPeer, true);
  const auto to_re_peer = make_session(Asn{2}, Relationship::kPeer, true);
  const auto to_comm_peer = make_session(Asn{3}, Relationship::kPeer, false);
  EXPECT_TRUE(export_allowed(&from_re_peer, to_re_peer, true));
  EXPECT_FALSE(export_allowed(&from_re_peer, to_re_peer, false));
  EXPECT_FALSE(export_allowed(&from_re_peer, to_comm_peer, true));
  const auto from_comm_peer = make_session(Asn{4}, Relationship::kPeer, false);
  EXPECT_FALSE(export_allowed(&from_comm_peer, to_re_peer, true));
}

TEST(PolicyStrings, HumanReadable) {
  EXPECT_EQ(to_string(Relationship::kCustomer), "customer");
  EXPECT_EQ(to_string(Relationship::kPeer), "peer");
  EXPECT_EQ(to_string(Relationship::kProvider), "provider");
  EXPECT_EQ(to_string(ReStance::kPreferRe), "prefer-r&e");
  EXPECT_EQ(to_string(ReStance::kEqualPref), "equal-localpref");
  EXPECT_EQ(to_string(ReStance::kPreferCommodity), "prefer-commodity");
}

}  // namespace
}  // namespace re::bgp
