// Unit tests for the Table 4 builder (inference x prepend-class cross-tab).
#include <gtest/gtest.h>

#include "core/prepend_analysis.h"

namespace re::core {
namespace {

PrefixInference make_inference(std::uint32_t id, std::uint32_t origin,
                               Inference inference) {
  PrefixInference p;
  p.prefix = net::Prefix(net::IPv4Address(id << 12), 20);
  p.origin = net::Asn{origin};
  p.inference = inference;
  return p;
}

OriginRibView make_view(std::uint32_t origin, std::optional<std::uint32_t> re,
                        std::optional<std::uint32_t> comm) {
  OriginRibView v;
  v.origin = net::Asn{origin};
  v.re_prepends = re;
  v.comm_prepends = comm;
  return v;
}

TEST(Table4, JoinsInferencesWithSurvey) {
  RibSurveyResult survey;
  survey.origins.push_back(make_view(1, 0, 0));    // R=C
  survey.origins.push_back(make_view(2, 0, 2));    // R<C
  survey.origins.push_back(make_view(3, 1, 0));    // R>C
  survey.origins.push_back(make_view(4, 0, std::nullopt));  // no commodity

  std::vector<PrefixInference> inferences{
      make_inference(1, 1, Inference::kAlwaysRe),
      make_inference(2, 1, Inference::kAlwaysRe),  // two prefixes, same AS
      make_inference(3, 2, Inference::kSwitchToRe),
      make_inference(4, 3, Inference::kAlwaysCommodity),
      make_inference(5, 4, Inference::kMixed),
  };
  const Table4 table = build_table4(inferences, survey);
  EXPECT_EQ(table.cell(PrependClass::kEqual, Inference::kAlwaysRe), 2u);
  EXPECT_EQ(table.cell(PrependClass::kMoreToComm, Inference::kSwitchToRe), 1u);
  EXPECT_EQ(table.cell(PrependClass::kMoreToRe, Inference::kAlwaysCommodity), 1u);
  EXPECT_EQ(table.cell(PrependClass::kNoCommodity, Inference::kMixed), 1u);
  EXPECT_EQ(table.totals.at(PrependClass::kEqual), 2u);
  EXPECT_NEAR(table.share(PrependClass::kEqual, Inference::kAlwaysRe), 1.0, 1e-9);
}

TEST(Table4, SkipsUntabulatedCategories) {
  RibSurveyResult survey;
  survey.origins.push_back(make_view(1, 0, 0));
  std::vector<PrefixInference> inferences{
      make_inference(1, 1, Inference::kExcludedLoss),
      make_inference(2, 1, Inference::kOscillating),
      make_inference(3, 1, Inference::kSwitchToCommodity),
  };
  const Table4 table = build_table4(inferences, survey);
  EXPECT_TRUE(table.totals.empty());
}

TEST(Table4, SkipsOriginsAbsentFromSurvey) {
  RibSurveyResult survey;
  std::vector<PrefixInference> inferences{
      make_inference(1, 99, Inference::kAlwaysRe)};
  const Table4 table = build_table4(inferences, survey);
  EXPECT_EQ(table.cell(PrependClass::kEqual, Inference::kAlwaysRe), 0u);
}

TEST(Table4, ShareZeroForEmptyColumn) {
  Table4 table;
  EXPECT_EQ(table.share(PrependClass::kEqual, Inference::kAlwaysRe), 0.0);
  EXPECT_EQ(table.cell(PrependClass::kEqual, Inference::kAlwaysRe), 0u);
}

class PrependClassification
    : public ::testing::TestWithParam<
          std::tuple<std::optional<std::uint32_t>, std::optional<std::uint32_t>,
                     PrependClass>> {};

TEST_P(PrependClassification, Classifies) {
  const auto& [re, comm, expected] = GetParam();
  EXPECT_EQ(classify_prepending(make_view(1, re, comm)), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrependClassification,
    ::testing::Values(
        std::make_tuple(std::optional<std::uint32_t>{0},
                        std::optional<std::uint32_t>{0}, PrependClass::kEqual),
        std::make_tuple(std::optional<std::uint32_t>{2},
                        std::optional<std::uint32_t>{2}, PrependClass::kEqual),
        std::make_tuple(std::optional<std::uint32_t>{0},
                        std::optional<std::uint32_t>{3},
                        PrependClass::kMoreToComm),
        std::make_tuple(std::optional<std::uint32_t>{3},
                        std::optional<std::uint32_t>{1},
                        PrependClass::kMoreToRe),
        std::make_tuple(std::optional<std::uint32_t>{}, std::optional<std::uint32_t>{1},
                        PrependClass::kMoreToComm),  // missing R&E obs = 0
        std::make_tuple(std::optional<std::uint32_t>{2}, std::optional<std::uint32_t>{},
                        PrependClass::kNoCommodity),
        std::make_tuple(std::optional<std::uint32_t>{}, std::optional<std::uint32_t>{},
                        PrependClass::kNoCommodity)));

}  // namespace
}  // namespace re::core
