// Tests for the probing substrate: seed generation, the §3.2 selection
// pipeline, the prober, and the measurement host.
#include <gtest/gtest.h>

#include "probing/host.h"
#include "probing/prober.h"
#include "probing/seeds.h"

namespace re::probing {
namespace {

topo::Ecosystem make_ecosystem() {
  topo::EcosystemParams params;
  params = params.scaled(0.08);
  params.seed = 20250529;
  return topo::Ecosystem::generate(params);
}

class SeedsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new topo::Ecosystem(make_ecosystem());
    db_ = new SeedDatabase(SeedDatabase::generate(*ecosystem_, SeedGenParams{}));
    selection_ = new SelectionResult(select_probe_seeds(*ecosystem_, *db_, 11));
  }
  static void TearDownTestSuite() {
    delete selection_;
    delete db_;
    delete ecosystem_;
  }
  static const topo::Ecosystem& eco() { return *ecosystem_; }
  static const SeedDatabase& db() { return *db_; }
  static const SelectionResult& sel() { return *selection_; }

 private:
  static const topo::Ecosystem* ecosystem_;
  static const SeedDatabase* db_;
  static const SelectionResult* selection_;
};
const topo::Ecosystem* SeedsFixture::ecosystem_ = nullptr;
const SeedDatabase* SeedsFixture::db_ = nullptr;
const SelectionResult* SeedsFixture::selection_ = nullptr;

TEST_F(SeedsFixture, CoverageRatesNearPaper) {
  // §3.2: 65.2% of prefixes had ISI seeds; 73.3% had any seed; 68.0% were
  // responsive; 82.7% of responsive prefixes had three destinations.
  const SelectionStats& stats = sel().stats;
  ASSERT_GT(stats.total_prefixes, 0u);
  const double isi = static_cast<double>(stats.isi_seeded) / stats.total_prefixes;
  const double any = static_cast<double>(stats.any_seeded) / stats.total_prefixes;
  const double responsive =
      static_cast<double>(stats.responsive) / stats.total_prefixes;
  const double three =
      static_cast<double>(stats.with_three_targets) / stats.responsive;
  EXPECT_NEAR(isi, 0.652, 0.05);
  EXPECT_NEAR(any, 0.733, 0.05);
  EXPECT_NEAR(responsive, 0.68, 0.07);
  EXPECT_NEAR(three, 0.827, 0.22);
}

TEST_F(SeedsFixture, CoveredPrefixesAreExcluded) {
  EXPECT_EQ(static_cast<int>(sel().stats.covered_excluded),
            eco().params().covered_prefixes);
  for (const PrefixSeeds& s : sel().seeds) {
    for (const topo::PrefixRecord& p : eco().prefixes()) {
      if (p.prefix == s.prefix) {
        EXPECT_FALSE(p.covered);
      }
    }
  }
}

TEST_F(SeedsFixture, TargetsAreResponsiveAndInPrefix) {
  for (const PrefixSeeds& s : sel().seeds) {
    ASSERT_FALSE(s.targets.empty());
    ASSERT_LE(s.targets.size(), 3u);
    for (const ProbeTarget& t : s.targets) {
      EXPECT_TRUE(db().currently_responsive(t.address));
      EXPECT_TRUE(s.prefix.contains(t.address)) << s.prefix.to_string();
    }
  }
}

TEST_F(SeedsFixture, NoDuplicateTargetsWithinPrefix) {
  for (const PrefixSeeds& s : sel().seeds) {
    for (std::size_t i = 0; i < s.targets.size(); ++i) {
      for (std::size_t j = i + 1; j < s.targets.size(); ++j) {
        EXPECT_NE(s.targets[i].address, s.targets[j].address);
      }
    }
  }
}

TEST_F(SeedsFixture, SeedOriginKindsAccounted) {
  const SelectionStats& stats = sel().stats;
  EXPECT_EQ(stats.isi_only + stats.censys_only + stats.mixed, stats.responsive);
  EXPECT_GT(stats.isi_only, stats.censys_only);  // ISI is ranked first
}

TEST_F(SeedsFixture, InterconnectMarkedOnlyWithTwoPlusTargets) {
  std::size_t interconnects = 0;
  for (const PrefixSeeds& s : sel().seeds) {
    for (std::size_t i = 0; i < s.targets.size(); ++i) {
      if (s.targets[i].routes_via.has_value()) {
        ++interconnects;
        EXPECT_GE(s.targets.size(), 2u);
        EXPECT_EQ(i, s.targets.size() - 1);  // convention: last target
      }
    }
  }
  EXPECT_GT(interconnects, 0u);
}

TEST_F(SeedsFixture, IcmpSeedsComeFromIsi) {
  for (const PrefixSeeds& s : sel().seeds) {
    if (s.seed_origin == SeedOrigin::kIsi) {
      for (const ProbeTarget& t : s.targets) {
        EXPECT_EQ(t.method, ProbeMethod::kIcmpEcho);
      }
    }
    if (s.seed_origin == SeedOrigin::kCensys) {
      for (const ProbeTarget& t : s.targets) {
        EXPECT_NE(t.method, ProbeMethod::kIcmpEcho);
        EXPECT_NE(t.port, 0);
      }
    }
  }
}

TEST_F(SeedsFixture, SelectionDeterministicForSeed) {
  const SelectionResult again = select_probe_seeds(eco(), db(), 11);
  ASSERT_EQ(again.seeds.size(), sel().seeds.size());
  for (std::size_t i = 0; i < again.seeds.size(); ++i) {
    EXPECT_EQ(again.seeds[i].prefix, sel().seeds[i].prefix);
    ASSERT_EQ(again.seeds[i].targets.size(), sel().seeds[i].targets.size());
    for (std::size_t j = 0; j < again.seeds[i].targets.size(); ++j) {
      EXPECT_EQ(again.seeds[i].targets[j].address,
                sel().seeds[i].targets[j].address);
    }
  }
}

TEST_F(SeedsFixture, IsiRecordsRankedByScore) {
  std::size_t checked = 0;
  for (const PrefixSeeds& s : sel().seeds) {
    const auto* isi = db().isi_for(s.prefix);
    if (isi == nullptr) continue;
    for (std::size_t i = 1; i < isi->size(); ++i) {
      ASSERT_GE((*isi)[i - 1].score, (*isi)[i].score);
    }
    if (++checked > 50) break;
  }
  EXPECT_GT(checked, 0u);
}

// ------------------------------------------------------------------ prober

TEST(Prober, AdvancesClockAtConfiguredRate) {
  // 3 targets at 1 pps should take ~3 seconds.
  std::vector<PrefixSeeds> seeds(1);
  seeds[0].prefix = *net::Prefix::parse("10.0.0.0/24");
  for (int i = 0; i < 3; ++i) {
    seeds[0].targets.push_back(
        ProbeTarget{seeds[0].prefix.address_at(1 + i), ProbeMethod::kIcmpEcho, 0, {}});
  }
  ProberConfig config;
  config.pps = 1.0;
  config.transient_loss = 0.0;
  Prober prober(config, 1);
  net::SimClock clock;
  const RoundResult result = prober.run_round(
      seeds, [](const PrefixSeeds&, const ProbeTarget&) { return 5; }, clock);
  EXPECT_EQ(result.probes_sent, 3u);
  EXPECT_EQ(result.responses, 3u);
  EXPECT_EQ(clock.now(), 3);
  EXPECT_EQ(result.prefixes[0].response_count(), 3u);
  EXPECT_EQ(result.prefixes[0].outcomes[0].vlan_id, 5);
}

TEST(Prober, ResolverNulloptMeansNoResponse) {
  std::vector<PrefixSeeds> seeds(1);
  seeds[0].prefix = *net::Prefix::parse("10.0.0.0/24");
  seeds[0].targets.push_back(
      ProbeTarget{seeds[0].prefix.address_at(1), ProbeMethod::kIcmpEcho, 0, {}});
  ProberConfig config;
  config.transient_loss = 0.0;
  Prober prober(config, 1);
  net::SimClock clock;
  const RoundResult result = prober.run_round(
      seeds,
      [](const PrefixSeeds&, const ProbeTarget&) -> std::optional<int> {
        return std::nullopt;
      },
      clock);
  EXPECT_EQ(result.responses, 0u);
  EXPECT_FALSE(result.prefixes[0].outcomes[0].responded);
}

TEST(Prober, TransientLossDropsSomeProbes) {
  std::vector<PrefixSeeds> seeds(1);
  seeds[0].prefix = *net::Prefix::parse("10.0.0.0/16");
  for (int i = 0; i < 2000; ++i) {
    seeds[0].targets.push_back(ProbeTarget{seeds[0].prefix.address_at(1 + i),
                                           ProbeMethod::kIcmpEcho, 0, {}});
  }
  ProberConfig config;
  config.transient_loss = 0.10;
  Prober prober(config, 1);
  net::SimClock clock;
  const RoundResult result = prober.run_round(
      seeds, [](const PrefixSeeds&, const ProbeTarget&) { return 1; }, clock);
  const double loss_rate =
      1.0 - static_cast<double>(result.responses) / result.probes_sent;
  EXPECT_NEAR(loss_rate, 0.10, 0.03);
}

// -------------------------------------------------------------------- host

TEST(MeasurementHost, MapsTerminalsToInterfaces) {
  MeasurementHost host(*net::IPv4Address::parse("163.253.63.63"));
  host.add_interface({18, "ens3f1np1.18", false, net::Asn{396955}});
  host.add_interface({17, "ens3f1np1.17", true, net::Asn{11537}});

  const VlanInterface* commodity = host.interface_for_terminal(net::Asn{396955});
  ASSERT_NE(commodity, nullptr);
  EXPECT_FALSE(commodity->re);
  EXPECT_EQ(commodity->vlan_id, 18);

  const VlanInterface* re = host.interface_for_terminal(net::Asn{11537});
  ASSERT_NE(re, nullptr);
  EXPECT_TRUE(re->re);

  EXPECT_EQ(host.interface_for_terminal(net::Asn{1}), nullptr);
  EXPECT_EQ(host.interface_by_vlan(17), re);
  EXPECT_EQ(host.interface_by_vlan(99), nullptr);
  EXPECT_EQ(host.terminals().size(), 2u);
  EXPECT_EQ(host.source().to_string(), "163.253.63.63");
}

TEST(ProbeMethodStrings, HumanReadable) {
  EXPECT_EQ(to_string(ProbeMethod::kIcmpEcho), "icmp-echo");
  EXPECT_EQ(to_string(ProbeMethod::kTcpSyn), "tcp-syn");
  EXPECT_EQ(to_string(ProbeMethod::kUdp), "udp");
}

}  // namespace
}  // namespace re::probing
