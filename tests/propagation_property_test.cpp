// Property tests of BGP propagation on randomized topologies: valley-free
// paths, loop-freedom, forwarding consistency, and announce/withdraw
// round-trips.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "bgp/network.h"
#include "dataplane/return_path.h"
#include "netbase/rng.h"

namespace re::bgp {
namespace {

using net::Asn;
using net::Prefix;

const Prefix kPrefix = *Prefix::parse("163.253.63.0/24");

// A random multi-tier topology: `tiers` levels, each AS buys transit from
// 1-2 ASes of the level above, plus some same-level peering.
struct RandomTopology {
  BgpNetwork network;
  std::vector<std::vector<Asn>> tiers;
  std::map<std::pair<Asn, Asn>, Relationship> edges;  // (a,b) -> b's role to a

  explicit RandomTopology(std::uint64_t seed, int tier_count = 4,
                          int per_tier = 6)
      : network(seed) {
    net::Rng rng(seed * 77 + 1);
    std::uint32_t next_asn = 100;
    for (int t = 0; t < tier_count; ++t) {
      tiers.emplace_back();
      for (int i = 0; i < per_tier; ++i) {
        tiers.back().push_back(Asn{next_asn++});
      }
    }
    // Top tier: full peering mesh.
    for (std::size_t i = 0; i < tiers[0].size(); ++i) {
      for (std::size_t j = i + 1; j < tiers[0].size(); ++j) {
        network.connect_peering(tiers[0][i], tiers[0][j]);
        edges[{tiers[0][i], tiers[0][j]}] = Relationship::kPeer;
        edges[{tiers[0][j], tiers[0][i]}] = Relationship::kPeer;
      }
    }
    // Lower tiers: providers above, occasional lateral peering.
    for (std::size_t t = 1; t < tiers.size(); ++t) {
      for (const Asn as : tiers[t]) {
        const int providers = 1 + static_cast<int>(rng.below(2));
        std::vector<Asn> pool = tiers[t - 1];
        rng.shuffle(pool);
        for (int p = 0; p < providers; ++p) {
          network.connect_transit(pool[static_cast<std::size_t>(p)], as);
          edges[{as, pool[static_cast<std::size_t>(p)]}] = Relationship::kProvider;
          edges[{pool[static_cast<std::size_t>(p)], as}] = Relationship::kCustomer;
        }
      }
      for (std::size_t i = 0; i + 1 < tiers[t].size(); i += 2) {
        if (rng.chance(0.5)) {
          network.connect_peering(tiers[t][i], tiers[t][i + 1]);
          edges[{tiers[t][i], tiers[t][i + 1]}] = Relationship::kPeer;
          edges[{tiers[t][i + 1], tiers[t][i]}] = Relationship::kPeer;
        }
      }
    }
  }

  Asn bottom_as(std::size_t index = 0) const {
    return tiers.back()[index % tiers.back().size()];
  }

  std::vector<Asn> all() const {
    std::vector<Asn> out;
    for (const auto& tier : tiers) out.insert(out.end(), tier.begin(), tier.end());
    return out;
  }
};

class PropagationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropagationProperty, PathsAreLoopFree) {
  RandomTopology topo(GetParam());
  topo.network.announce(topo.bottom_as(), kPrefix);
  topo.network.run_to_convergence();
  for (const Asn as : topo.all()) {
    const Route* best = topo.network.speaker(as)->best(kPrefix);
    const PathTable& paths = topo.network.paths();
    if (best == nullptr || paths.empty(best->path)) continue;
    EXPECT_EQ(paths.unique_count(best->path), paths.length(best->path))
        << as.to_string() << " path " << paths.to_string(best->path);
    EXPECT_FALSE(paths.contains(best->path, as)) << as.to_string();
  }
}

TEST_P(PropagationProperty, PathsAreValleyFree) {
  RandomTopology topo(GetParam());
  const Asn origin = topo.bottom_as();
  topo.network.announce(origin, kPrefix);
  topo.network.run_to_convergence();
  for (const Asn as : topo.all()) {
    const Route* best = topo.network.speaker(as)->best(kPrefix);
    const PathTable& paths = topo.network.paths();
    if (best == nullptr || paths.empty(best->path)) continue;
    // Walk the path from the observer toward the origin. Once the path
    // goes "down" (provider->customer step) or sideways (peer), it must
    // never go "up" (customer->provider) or sideways again.
    std::vector<Asn> hops;
    hops.push_back(as);
    for (const Asn hop : paths.span(best->path)) hops.push_back(hop);
    bool descended = false;
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      const auto it = topo.edges.find({hops[i], hops[i + 1]});
      ASSERT_NE(it, topo.edges.end())
          << hops[i].to_string() << "->" << hops[i + 1].to_string();
      const Relationship rel = it->second;  // hops[i+1]'s role to hops[i]
      if (rel == Relationship::kCustomer) {
        descended = true;
      } else {
        // Upward or lateral step: only allowed before any descent.
        EXPECT_FALSE(descended)
            << "valley in path " << paths.to_string(best->path) << " at "
            << hops[i].to_string();
      }
    }
  }
}

TEST_P(PropagationProperty, ForwardingReachesOrigin) {
  RandomTopology topo(GetParam());
  const Asn origin = topo.bottom_as();
  topo.network.announce(origin, kPrefix);
  topo.network.run_to_convergence();
  dataplane::ReturnPathResolver resolver(topo.network, kPrefix, {origin});
  for (const Asn as : topo.all()) {
    if (topo.network.speaker(as)->best(kPrefix) == nullptr) continue;
    const dataplane::ReturnPath path = resolver.resolve(as);
    EXPECT_TRUE(path.reachable) << as.to_string();
    EXPECT_EQ(path.terminal, origin);
    // Hop-by-hop forwarding is loop-free.
    std::unordered_set<Asn> seen(path.hops.begin(), path.hops.end());
    EXPECT_EQ(seen.size(), path.hops.size());
  }
}

TEST_P(PropagationProperty, WithdrawRemovesAllState) {
  RandomTopology topo(GetParam());
  const Asn origin = topo.bottom_as();
  topo.network.announce(origin, kPrefix);
  topo.network.run_to_convergence();
  topo.network.withdraw(origin, kPrefix);
  topo.network.run_to_convergence();
  for (const Asn as : topo.all()) {
    EXPECT_EQ(topo.network.speaker(as)->best(kPrefix), nullptr)
        << as.to_string();
  }
}

TEST_P(PropagationProperty, ReAnnounceAfterWithdrawMatchesFirstAnnounce) {
  RandomTopology topo(GetParam());
  const Asn origin = topo.bottom_as();
  topo.network.announce(origin, kPrefix);
  topo.network.run_to_convergence();
  std::unordered_map<Asn, AsPath> first;
  for (const Asn as : topo.all()) {
    if (const Route* best = topo.network.speaker(as)->best(kPrefix)) {
      first[as] = topo.network.paths().path(best->path);
    }
  }
  topo.network.withdraw(origin, kPrefix);
  topo.network.run_to_convergence();
  topo.network.announce(origin, kPrefix);
  topo.network.run_to_convergence();
  for (const Asn as : topo.all()) {
    const Route* best = topo.network.speaker(as)->best(kPrefix);
    if (first.count(as)) {
      ASSERT_NE(best, nullptr) << as.to_string();
      EXPECT_EQ(topo.network.paths().path(best->path), first.at(as))
          << as.to_string();
    } else {
      EXPECT_EQ(best, nullptr) << as.to_string();
    }
  }
}

TEST_P(PropagationProperty, PrependMonotonicallyLengthensPaths) {
  RandomTopology topo(GetParam());
  const Asn origin = topo.bottom_as();
  topo.network.announce(origin, kPrefix);
  topo.network.run_to_convergence();
  std::unordered_map<Asn, std::size_t> baseline;
  for (const Asn as : topo.all()) {
    if (as == origin) continue;  // the origin's local route has no path
    if (const Route* best = topo.network.speaker(as)->best(kPrefix)) {
      baseline[as] = best->path_length;
    }
  }
  topo.network.set_origin_prepend(origin, kPrefix, 2);
  topo.network.run_to_convergence();
  for (const auto& [as, length] : baseline) {
    const Route* best = topo.network.speaker(as)->best(kPrefix);
    ASSERT_NE(best, nullptr) << as.to_string();
    // With a single origin, every surviving path carries the prepends.
    EXPECT_EQ(best->path_length, length + 2) << as.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace re::bgp
