// Tests for AS relationship inference and customer cones, including
// validation against the ecosystem's planted ground truth.
#include <gtest/gtest.h>

#include "bgp/network.h"
#include "topology/ecosystem.h"
#include "topology/relationship_inference.h"

namespace re::topo {
namespace {

using bgp::AsPath;
using net::Asn;

TEST(AsEdge, NormalizesOrder) {
  EXPECT_EQ(AsEdge::of(Asn{5}, Asn{2}), (AsEdge{Asn{2}, Asn{5}}));
  EXPECT_EQ(AsEdge::of(Asn{2}, Asn{5}), (AsEdge{Asn{2}, Asn{5}}));
}

TEST(RelationshipInference, SimpleHierarchy) {
  // Tier-1 (1) provides to 10, 20, 30, 40 (largest degree, as Gao's
  // anchoring assumes); 10 provides to 100 and 101; 20 provides to 200.
  std::vector<AsPath> paths = {
      AsPath{Asn{10}, Asn{1}, Asn{20}, Asn{200}},
      AsPath{Asn{30}, Asn{1}, Asn{20}, Asn{200}},
      AsPath{Asn{40}, Asn{1}, Asn{20}, Asn{200}},
      AsPath{Asn{100}, Asn{10}, Asn{1}, Asn{20}, Asn{200}},
      AsPath{Asn{101}, Asn{10}, Asn{1}, Asn{30}},
      AsPath{Asn{20}, Asn{1}, Asn{10}, Asn{100}},
      AsPath{Asn{20}, Asn{1}, Asn{10}, Asn{101}},
      AsPath{Asn{30}, Asn{1}, Asn{40}},
  };
  const auto inference = RelationshipInference::infer(paths);
  EXPECT_EQ(inference.relationship(Asn{1}, Asn{10}),
            InferredRelationship::kProviderToCustomer);
  EXPECT_EQ(inference.relationship(Asn{10}, Asn{1}),
            InferredRelationship::kCustomerToProvider);
  EXPECT_EQ(inference.relationship(Asn{10}, Asn{100}),
            InferredRelationship::kProviderToCustomer);
  EXPECT_EQ(inference.relationship(Asn{20}, Asn{200}),
            InferredRelationship::kProviderToCustomer);
  EXPECT_FALSE(inference.relationship(Asn{100}, Asn{200}).has_value());
}

TEST(RelationshipInference, PrependsCollapsed) {
  std::vector<AsPath> paths = {
      AsPath{Asn{10}, Asn{1}, Asn{1}, Asn{1}, Asn{20}},
      AsPath{Asn{10}, Asn{1}, Asn{20}, Asn{20}, Asn{200}},
      AsPath{Asn{30}, Asn{1}, Asn{20}},
  };
  const auto inference = RelationshipInference::infer(paths);
  // Degree of 1 counts each neighbor once despite prepends.
  EXPECT_EQ(inference.degree(Asn{1}), 3u);
  EXPECT_TRUE(inference.relationship(Asn{1}, Asn{20}).has_value());
}

TEST(RelationshipInference, CustomerConeTransitive) {
  std::vector<AsPath> paths = {
      AsPath{Asn{9}, Asn{1}, Asn{10}, Asn{100}},
      AsPath{Asn{9}, Asn{1}, Asn{10}, Asn{101}},
      AsPath{Asn{9}, Asn{1}, Asn{20}},
      AsPath{Asn{8}, Asn{1}, Asn{10}, Asn{100}},
  };
  const auto inference = RelationshipInference::infer(paths);
  const auto cone = inference.customer_cone(Asn{1});
  EXPECT_TRUE(cone.count(Asn{1}));
  EXPECT_TRUE(cone.count(Asn{10}));
  EXPECT_TRUE(cone.count(Asn{100}));
  EXPECT_TRUE(cone.count(Asn{101}));
  EXPECT_TRUE(cone.count(Asn{20}));
  // Leaf cones contain only themselves.
  EXPECT_EQ(inference.customer_cone(Asn{100}).size(), 1u);
}

TEST(RelationshipInference, ValidationCountsCategories) {
  std::vector<AsPath> paths = {
      AsPath{Asn{10}, Asn{1}, Asn{20}},
      AsPath{Asn{20}, Asn{1}, Asn{10}},
  };
  const auto inference = RelationshipInference::infer(paths);
  std::map<AsEdge, InferredRelationship> truth;
  truth[AsEdge::of(Asn{1}, Asn{10})] = InferredRelationship::kProviderToCustomer;
  truth[AsEdge::of(Asn{1}, Asn{20})] = InferredRelationship::kProviderToCustomer;
  const auto report = validate_inference(inference, truth);
  EXPECT_EQ(report.edges_checked, 2u);
  EXPECT_EQ(report.correct + report.transit_as_peer + report.peer_as_transit +
                report.inverted,
            report.edges_checked);
}

// ---------------------------------------------- end-to-end on the ecosystem

TEST(RelationshipInference, RecoversEcosystemGroundTruth) {
  // Collect paths the way the literature does — from collector vantage
  // RIBs — then infer relationships and validate against the generator's
  // planted edges.
  EcosystemParams params;
  params = params.scaled(0.06);
  params.seed = 20250529;
  const Ecosystem eco = Ecosystem::generate(params);
  bgp::BgpNetwork network(17);
  eco.build_network(network);

  std::vector<bgp::AsPath> observed;
  int announced = 0;
  for (const net::Asn origin : eco.members()) {
    const auto prefixes = eco.prefixes_of(origin);
    if (prefixes.empty()) continue;
    bgp::OriginationOptions options;
    options.to_commodity_sessions =
        eco.directory().find(origin)->traits.announce_to_commodity;
    network.announce(origin, prefixes[0]->prefix, options);
    network.run_to_convergence();
    for (const net::Asn peer : eco.collector_peers()) {
      if (const bgp::Route* best =
              network.speaker(peer)->best(prefixes[0]->prefix)) {
        observed.push_back(
            network.paths().path(best->path).prepended(peer, 1));
      }
    }
    network.clear_prefix(prefixes[0]->prefix);
    if (++announced >= 120) break;  // plenty of paths for a test
  }
  ASSERT_GT(observed.size(), 500u);

  const auto inference = RelationshipInference::infer(observed);
  ASSERT_GT(inference.edge_count(), 100u);

  // Ground truth from the directory.
  std::map<AsEdge, InferredRelationship> truth;
  for (const net::Asn asn : eco.directory().all()) {
    const AsRecord* r = eco.directory().find(asn);
    for (const net::Asn provider : r->re_providers) {
      truth[AsEdge::of(asn, provider)] =
          asn < provider ? InferredRelationship::kCustomerToProvider
                         : InferredRelationship::kProviderToCustomer;
    }
    for (const net::Asn provider : r->commodity_providers) {
      truth[AsEdge::of(asn, provider)] =
          asn < provider ? InferredRelationship::kCustomerToProvider
                         : InferredRelationship::kProviderToCustomer;
    }
    for (const net::Asn peer : r->re_peers) {
      truth[AsEdge::of(asn, peer)] = InferredRelationship::kPeerToPeer;
    }
  }
  // Tier-1 mesh edges are peerings.
  for (std::size_t i = 0; i < eco.tier1s().size(); ++i) {
    for (std::size_t j = i + 1; j < eco.tier1s().size(); ++j) {
      truth[AsEdge::of(eco.tier1s()[i], eco.tier1s()[j])] =
          InferredRelationship::kPeerToPeer;
    }
  }

  const auto report = validate_inference(inference, truth);
  ASSERT_GT(report.edges_checked, 100u);
  // The literature reports >90% precision for transit edges; our
  // controlled setting should do at least as well.
  EXPECT_GT(report.accuracy(), 0.85)
      << "transit-as-peer " << report.transit_as_peer << ", peer-as-transit "
      << report.peer_as_transit << ", inverted " << report.inverted;
}

TEST(RelationshipInference, Tier1sAreProviderFree) {
  EcosystemParams params;
  params = params.scaled(0.06);
  params.seed = 20250529;
  const Ecosystem eco = Ecosystem::generate(params);
  bgp::BgpNetwork network(17);
  eco.build_network(network);

  std::vector<bgp::AsPath> observed;
  int announced = 0;
  for (const net::Asn origin : eco.members()) {
    const auto prefixes = eco.prefixes_of(origin);
    if (prefixes.empty()) continue;
    network.announce(origin, prefixes[0]->prefix);
    network.run_to_convergence();
    for (const net::Asn peer : eco.collector_peers()) {
      if (const bgp::Route* best =
              network.speaker(peer)->best(prefixes[0]->prefix)) {
        observed.push_back(
            network.paths().path(best->path).prepended(peer, 1));
      }
    }
    network.clear_prefix(prefixes[0]->prefix);
    if (++announced >= 80) break;
  }
  const auto inference = RelationshipInference::infer(observed);
  const auto top = inference.provider_free_ases();
  // Provider-free ASes should be (almost all) true summits: tier-1s or
  // provider-less R&E networks (Internet2, GEANT, NORDUnet have only
  // peers). Gao-style inference occasionally mislabels a well-connected
  // transit's uplinks as peerings, so allow a small error count — the
  // same tolerance the original validation studies report.
  std::size_t false_summits = 0;
  for (const net::Asn asn : top) {
    const AsRecord* r = eco.directory().find(asn);
    ASSERT_NE(r, nullptr);
    const bool true_summit = r->re_providers.empty() &&
                             r->commodity_providers.empty();
    false_summits += true_summit ? 0 : 1;
  }
  EXPECT_LE(false_summits, 2u);
  // Some true summits hide behind mis-oriented clique peerings (the
  // reason AS-Rank adds explicit clique detection), but a core remains.
  EXPECT_GE(top.size(), 3u);
}

}  // namespace
}  // namespace re::topo
