// Tests for the §5 generalized relative-preference experiment and the
// Figure 6 IXP scenario.
#include <gtest/gtest.h>

#include "core/relative_preference.h"
#include "topology/ixp.h"

namespace re::core {
namespace {

using net::Asn;

// ------------------------------------------------------ classify_sequence

TEST(ClassifySequence, AlwaysFirst) {
  std::optional<int> sw;
  EXPECT_EQ(classify_sequence({0, 0, 0, 0}, &sw),
            RelativePreference::kAlwaysFirst);
  EXPECT_EQ(sw, 0);
}

TEST(ClassifySequence, AlwaysSecond) {
  std::optional<int> sw;
  EXPECT_EQ(classify_sequence({1, 1, 1, 1}, &sw),
            RelativePreference::kAlwaysSecond);
  EXPECT_FALSE(sw.has_value());
}

TEST(ClassifySequence, SingleSwitchIsLengthSensitive) {
  std::optional<int> sw;
  EXPECT_EQ(classify_sequence({1, 1, 0, 0, 0}, &sw),
            RelativePreference::kLengthSensitive);
  EXPECT_EQ(sw, 2);
}

TEST(ClassifySequence, WrongDirectionSwitchIsInconsistent) {
  std::optional<int> sw;
  EXPECT_EQ(classify_sequence({0, 0, 1, 1}, &sw),
            RelativePreference::kInconsistent);
}

TEST(ClassifySequence, OscillationIsInconsistent) {
  std::optional<int> sw;
  EXPECT_EQ(classify_sequence({1, 0, 1, 0}, &sw),
            RelativePreference::kInconsistent);
}

TEST(ClassifySequence, UnreachableRoundIsInconsistent) {
  std::optional<int> sw;
  EXPECT_EQ(classify_sequence({1, -1, 0}, &sw),
            RelativePreference::kInconsistent);
  EXPECT_EQ(classify_sequence({}, &sw), RelativePreference::kInconsistent);
}

// ------------------------------------------------ experiment on a diamond

TEST(RelativePreferenceExperiment, RecoversPlantedStances) {
  // Three tested ASes under the same two endpoints: one prefers the first
  // class, one the second, one ties on length.
  bgp::BgpNetwork network(3);
  const Asn first_origin{100}, second_origin{200};
  for (const Asn tested : {Asn{41}, Asn{42}, Asn{43}}) {
    network.connect_transit(first_origin, tested, /*re_edge=*/true);
    network.connect_transit(second_origin, tested, /*re_edge=*/false);
  }
  // Hmm: endpoints as providers of the tested ASes keeps paths short and
  // controlled (1 + prepends on each side).
  network.speaker(Asn{41})->import_policy().re_stance = bgp::ReStance::kPreferRe;
  network.speaker(Asn{42})->import_policy().re_stance =
      bgp::ReStance::kPreferCommodity;
  network.speaker(Asn{43})->import_policy().re_stance = bgp::ReStance::kEqualPref;

  RouteClassEndpoint first{"first", first_origin, 17, false};
  RouteClassEndpoint second{"second", second_origin, 18, false};
  RelativePreferenceExperiment experiment(network, first, second);
  const auto results = experiment.run({Asn{41}, Asn{42}, Asn{43}});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].preference, RelativePreference::kAlwaysFirst);
  EXPECT_EQ(results[1].preference, RelativePreference::kAlwaysSecond);
  EXPECT_EQ(results[2].preference, RelativePreference::kLengthSensitive);
  ASSERT_TRUE(results[2].switch_round.has_value());
  // Equal paths at 0-0 (round 4): the switch lands within the schedule.
  EXPECT_GE(*results[2].switch_round, 1);
  EXPECT_LE(*results[2].switch_round, 6);
}

// --------------------------------------------------------- IXP scenario

TEST(IxpScenario, GenerationIsDeterministicAndShaped) {
  topo::IxpScenarioParams params;
  params.member_count = 40;
  const auto a = topo::IxpScenario::generate(params);
  const auto b = topo::IxpScenario::generate(params);
  ASSERT_EQ(a.members.size(), 40u);
  int equal = 0, provider = 0, confound = 0;
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].asn, b.members[i].asn);
    EXPECT_EQ(a.members[i].equal_localpref, b.members[i].equal_localpref);
    equal += a.members[i].equal_localpref;
    provider += a.members[i].prefers_provider;
    confound += a.members[i].peers_with_host_transit;
  }
  EXPECT_GT(equal, 0);
  EXPECT_GT(confound, 0);
}

TEST(IxpScenario, ExperimentRecoversMemberStances) {
  topo::IxpScenarioParams params;
  params.member_count = 30;
  params.seed = 7;
  const auto scenario = topo::IxpScenario::generate(params);
  bgp::BgpNetwork network(11);
  scenario.build_network(network);

  RouteClassEndpoint peer_side{"ixp-peer", params.host, 17, false};
  RouteClassEndpoint provider_side{"provider", Asn{65001}, 18, false};
  RelativePreferenceExperiment experiment(network, peer_side, provider_side);
  const auto results = experiment.run(scenario.member_asns());

  std::size_t checked = 0, correct = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const topo::IxpMemberSpec& member = scenario.members[i];
    if (member.peers_with_host_transit) continue;  // the known confound
    ++checked;
    const RelativePreference expected =
        member.equal_localpref ? RelativePreference::kLengthSensitive
        : member.prefers_provider ? RelativePreference::kAlwaysSecond
                                  : RelativePreference::kAlwaysFirst;
    correct += results[i].preference == expected ? 1 : 0;
  }
  ASSERT_GT(checked, 15u);
  // Peer-preferring and provider-preferring members classify exactly;
  // equal-localpref ones may sit outside the schedule's crossover window
  // when their provider chain is short, so allow some slack.
  EXPECT_GT(static_cast<double>(correct) / checked, 0.8);
}

TEST(IxpScenario, ConfoundedMembersMisclassify) {
  // The §5 warning: a member that peers with the host's transit hears a
  // short "provider-class" route over a peering session — the method
  // cannot isolate its peer-vs-provider preference.
  topo::IxpScenarioParams params;
  params.member_count = 30;
  params.seed = 7;
  const auto scenario = topo::IxpScenario::generate(params);
  bgp::BgpNetwork network(11);
  scenario.build_network(network);

  RouteClassEndpoint peer_side{"ixp-peer", params.host, 17, false};
  RouteClassEndpoint provider_side{"provider", Asn{65001}, 18, false};
  RelativePreferenceExperiment experiment(network, peer_side, provider_side);
  const auto results = experiment.run(scenario.member_asns());

  std::size_t confounded = 0, looks_wrong = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const topo::IxpMemberSpec& member = scenario.members[i];
    if (!member.peers_with_host_transit || member.prefers_provider) continue;
    ++confounded;
    // A peer-preferring member with the confound still returns via its
    // direct tier-1 peering at least sometimes, so it is NOT classified
    // kAlwaysFirst the way a clean peer-preferring member is.
    looks_wrong +=
        results[i].preference != RelativePreference::kAlwaysFirst ? 1 : 0;
  }
  ASSERT_GT(confounded, 0u);
  EXPECT_GT(looks_wrong, 0u);
}

TEST(RelativePreferenceStrings, HumanReadable) {
  EXPECT_EQ(to_string(RelativePreference::kAlwaysFirst), "always-first");
  EXPECT_EQ(to_string(RelativePreference::kLengthSensitive),
            "length-sensitive");
}

}  // namespace
}  // namespace re::core
