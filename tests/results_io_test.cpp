// Tests for result serialization: JSON result lines and the MRT-like
// binary update-log container.
#include <gtest/gtest.h>

#include <cstdio>

#include "io/results_io.h"

namespace re::io {
namespace {

core::PrefixInference sample_inference() {
  core::PrefixInference p;
  p.prefix = *net::Prefix::parse("163.253.63.0/24");
  p.origin = net::Asn{50123};
  p.side = topo::ReSide::kPeerNren;
  p.inference = core::Inference::kSwitchToRe;
  p.rounds = {core::RoundState::kCommodity, core::RoundState::kCommodity,
              core::RoundState::kRe,        core::RoundState::kRe,
              core::RoundState::kRe,        core::RoundState::kRe,
              core::RoundState::kRe,        core::RoundState::kRe,
              core::RoundState::kRe};
  p.first_re_round = 2;
  return p;
}

TEST(ResultLines, RoundTripSingle) {
  const core::PrefixInference original = sample_inference();
  const std::string line = to_json_line(original);
  const auto parsed = from_json_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->prefix, original.prefix);
  EXPECT_EQ(parsed->origin, original.origin);
  EXPECT_EQ(parsed->side, original.side);
  EXPECT_EQ(parsed->inference, original.inference);
  EXPECT_EQ(parsed->rounds, original.rounds);
  EXPECT_EQ(parsed->first_re_round, original.first_re_round);
}

TEST(ResultLines, RoundTripWithoutFirstReRound) {
  core::PrefixInference p = sample_inference();
  p.inference = core::Inference::kAlwaysCommodity;
  p.first_re_round.reset();
  const auto parsed = from_json_line(to_json_line(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->first_re_round.has_value());
}

TEST(ResultLines, MultiLineRoundTrip) {
  std::vector<core::PrefixInference> originals;
  for (int i = 0; i < 20; ++i) {
    core::PrefixInference p = sample_inference();
    p.prefix = net::Prefix(net::IPv4Address(0x80000000u + (i << 10)), 22);
    p.inference = static_cast<core::Inference>(i % 6);
    originals.push_back(p);
  }
  const std::string text = to_json_lines(originals);
  const auto parsed = from_json_lines(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ((*parsed)[i].prefix, originals[i].prefix);
    EXPECT_EQ((*parsed)[i].inference, originals[i].inference);
  }
}

TEST(ResultLines, RejectsMalformed) {
  EXPECT_FALSE(from_json_line("not json").has_value());
  EXPECT_FALSE(from_json_line("{}").has_value());
  EXPECT_FALSE(from_json_line(R"({"prefix":"bad","origin":1,"rounds":[],"inference":"always-re"})")
                   .has_value());
  EXPECT_FALSE(
      from_json_line(
          R"({"prefix":"10.0.0.0/24","origin":1,"rounds":["nope"],"inference":"always-re"})")
          .has_value());
  EXPECT_FALSE(
      from_json_line(
          R"({"prefix":"10.0.0.0/24","origin":1,"rounds":[],"inference":"wat"})")
          .has_value());
}

TEST(ResultTokens, AllValuesRoundTrip) {
  for (int i = 0; i <= 6; ++i) {
    const auto inference = static_cast<core::Inference>(i);
    const auto token = inference_token(inference);
    ASSERT_NE(token, "?");
    EXPECT_EQ(inference_from_token(token), inference);
  }
  for (int i = 0; i <= 3; ++i) {
    const auto state = static_cast<core::RoundState>(i);
    EXPECT_EQ(round_state_from_token(round_state_token(state)), state);
  }
  EXPECT_EQ(side_from_token(side_token(topo::ReSide::kParticipant)),
            topo::ReSide::kParticipant);
  EXPECT_EQ(side_from_token(side_token(topo::ReSide::kPeerNren)),
            topo::ReSide::kPeerNren);
  EXPECT_FALSE(side_from_token("bogus").has_value());
}

// ------------------------------------------------------------- update log

bgp::UpdateLog sample_log() {
  bgp::UpdateLog log;
  log.record(100, net::Asn{3356}, *net::Prefix::parse("163.253.63.0/24"),
             false, bgp::AsPath{net::Asn{3356}, net::Asn{396955}});
  log.record(250, net::Asn{3333}, *net::Prefix::parse("163.253.63.0/24"),
             false,
             bgp::AsPath{net::Asn{3333}, net::Asn{1103}, net::Asn{11537}});
  log.record(9000, net::Asn{3356}, *net::Prefix::parse("163.253.63.0/24"),
             true, bgp::AsPath{});
  return log;
}

TEST(UpdateLogIo, EncodeDecodeRoundTrip) {
  const bgp::UpdateLog original = sample_log();
  const auto bytes = encode_update_log(original);
  const auto decoded = decode_update_log(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto& a = original.updates()[i];
    const auto& b = decoded->updates()[i];
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.peer, b.peer);
    EXPECT_EQ(a.prefix, b.prefix);
    EXPECT_EQ(a.withdraw, b.withdraw);
    // Ids live in each log's own table; compare the interned contents.
    EXPECT_EQ(original.path(a), decoded->path(b));
  }
}

TEST(UpdateLogIo, EmptyLogRoundTrips) {
  const auto decoded = decode_update_log(encode_update_log(bgp::UpdateLog{}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 0u);
}

TEST(UpdateLogIo, RejectsCorruption) {
  auto bytes = encode_update_log(sample_log());
  // Bad magic.
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(decode_update_log(bad_magic).has_value());
  // Truncation.
  EXPECT_FALSE(
      decode_update_log(std::span(bytes).subspan(0, bytes.size() - 3))
          .has_value());
  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(decode_update_log(trailing).has_value());
  // Wrong version.
  auto bad_version = bytes;
  bad_version[5] = 99;
  EXPECT_FALSE(decode_update_log(bad_version).has_value());
}

TEST(UpdateLogIo, FileRoundTrip) {
  const std::string path = "/tmp/re_update_log_test.bin";
  const bgp::UpdateLog original = sample_log();
  ASSERT_TRUE(write_update_log(path, original));
  const auto loaded = read_update_log(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), original.size());
  std::remove(path.c_str());
  EXPECT_FALSE(read_update_log("/tmp/definitely-missing-file.bin").has_value());
}

}  // namespace
}  // namespace re::io
