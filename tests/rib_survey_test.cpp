// Tests for the RIB survey (the public-view sweep behind Table 4 and
// Figure 5) and its downstream analyses.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/prepend_analysis.h"
#include "core/rib_survey.h"
#include "core/route_selection.h"

namespace re::core {
namespace {

struct World {
  topo::Ecosystem ecosystem;
  RibSurveyResult survey;
};

World* make_world() {
  topo::EcosystemParams params;
  params = params.scaled(0.08);
  params.seed = 20250529;
  auto* world = new World{topo::Ecosystem::generate(params), {}};
  world->survey = run_rib_survey(world->ecosystem);
  return world;
}

class RibSurveyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = make_world(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static const World& world() { return *world_; }

 private:
  static const World* world_;
};
const World* RibSurveyFixture::world_ = nullptr;

TEST_F(RibSurveyFixture, CoversEveryMemberOrigin) {
  EXPECT_EQ(world().survey.origins.size(), world().ecosystem.members().size());
  for (const net::Asn member : world().ecosystem.members()) {
    EXPECT_NE(world().survey.find(member), nullptr) << member.to_string();
  }
  EXPECT_EQ(world().survey.find(net::Asn{424242}), nullptr);
}

TEST_F(RibSurveyFixture, CommodityPrependsMatchPlantedPolicy) {
  // For origins announcing to commodity and directly observed by a
  // commodity collector, the observed commodity-direction prepend equals
  // the planted commodity_prepend.
  std::size_t checked = 0;
  for (const OriginRibView& view : world().survey.origins) {
    const topo::AsRecord* r = world().ecosystem.directory().find(view.origin);
    if (!r->traits.announce_to_commodity || !view.comm_prepends.has_value()) {
      continue;
    }
    EXPECT_EQ(*view.comm_prepends, r->traits.commodity_prepend)
        << view.origin.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 50u);
}

TEST_F(RibSurveyFixture, NoCommodityObservationForReOnlyAnnouncers) {
  for (const OriginRibView& view : world().survey.origins) {
    const topo::AsRecord* r = world().ecosystem.directory().find(view.origin);
    if (!r->traits.announce_to_commodity && r->commodity_providers.empty()) {
      // Only R&E announcements exist; any commodity-direction observation
      // would have to leak through an NREN's commodity arm, whose
      // immediate upstream is the NREN — an R&E AS.
      EXPECT_FALSE(view.comm_prepends.has_value()) << view.origin.to_string();
    }
  }
}

TEST_F(RibSurveyFixture, RePrependsObserved) {
  std::size_t with_re_obs = 0;
  for (const OriginRibView& view : world().survey.origins) {
    with_re_obs += view.re_prepends.has_value() ? 1 : 0;
  }
  // The RIPE-like vantage peers with the collector and is R&E-connected,
  // so most origins have an R&E-direction observation.
  EXPECT_GT(with_re_obs, world().survey.origins.size() / 2);
}

TEST_F(RibSurveyFixture, RipeReachesMostOrigins) {
  std::size_t with_route = 0, via_re = 0;
  for (const OriginRibView& view : world().survey.origins) {
    with_route += view.ripe_has_route ? 1 : 0;
    via_re += view.ripe_via_re ? 1 : 0;
  }
  // Paper: RIPE had routes for 18,160 of 18,427 prefixes (98.6%) and used
  // R&E for 64% of them.
  EXPECT_GT(with_route, world().survey.origins.size() * 9 / 10);
  const double share = static_cast<double>(via_re) / with_route;
  EXPECT_GT(share, 0.40);
  EXPECT_LT(share, 0.85);
}

TEST_F(RibSurveyFixture, PrependClassification) {
  OriginRibView view;
  view.re_prepends = 0;
  view.comm_prepends = 0;
  EXPECT_EQ(classify_prepending(view), PrependClass::kEqual);
  view.comm_prepends = 2;
  EXPECT_EQ(classify_prepending(view), PrependClass::kMoreToComm);
  view.re_prepends = 3;
  EXPECT_EQ(classify_prepending(view), PrependClass::kMoreToRe);
  view.comm_prepends.reset();
  EXPECT_EQ(classify_prepending(view), PrependClass::kNoCommodity);
  // Missing R&E observation counts as zero prepends.
  view.re_prepends.reset();
  view.comm_prepends = 1;
  EXPECT_EQ(classify_prepending(view), PrependClass::kMoreToComm);
}

TEST_F(RibSurveyFixture, Figure5RegionsHaveMinimumAses) {
  const Figure5 fig = build_figure5(world().ecosystem, world().survey, 4);
  for (const RegionShare& r : fig.europe) {
    EXPECT_GE(r.ases, 4u) << r.region;
    EXPECT_LE(r.via_re, r.ases);
  }
  for (const RegionShare& r : fig.us_states) {
    EXPECT_GE(r.ases, 4u) << r.region;
  }
  EXPECT_FALSE(fig.europe.empty());
  EXPECT_FALSE(fig.us_states.empty());
}

TEST_F(RibSurveyFixture, Figure5CountryContrast) {
  // §4.3: commodity-selling + prepending NREN countries are reached over
  // R&E far more than shared-provider countries like Germany.
  const Figure5 fig = build_figure5(world().ecosystem, world().survey, 4);
  double high = -1, low = -1;
  for (const RegionShare& r : fig.europe) {
    if (r.region == "NO" || r.region == "SE" || r.region == "FR" ||
        r.region == "ES") {
      high = std::max(high, r.share());
    }
    if (r.region == "DE" || r.region == "UA" || r.region == "BY") {
      low = low < 0 ? r.share() : std::min(low, r.share());
    }
  }
  ASSERT_GE(high, 0.0) << "no high-R&E country aggregated";
  ASSERT_GE(low, 0.0) << "no shared-provider country aggregated";
  EXPECT_GT(high, 0.75);
  EXPECT_LT(low, 0.35);
  EXPECT_GT(high - low, 0.4);
}

TEST_F(RibSurveyFixture, Figure5RegionsSortedByShare) {
  const Figure5 fig = build_figure5(world().ecosystem, world().survey, 4);
  for (std::size_t i = 1; i < fig.europe.size(); ++i) {
    EXPECT_GE(fig.europe[i - 1].share(), fig.europe[i].share());
  }
}

TEST_F(RibSurveyFixture, SurveyIsDeterministic) {
  const RibSurveyResult again = run_rib_survey(world().ecosystem);
  ASSERT_EQ(again.origins.size(), world().survey.origins.size());
  for (std::size_t i = 0; i < again.origins.size(); ++i) {
    EXPECT_EQ(again.origins[i].ripe_via_re,
              world().survey.origins[i].ripe_via_re);
    EXPECT_EQ(again.origins[i].comm_prepends,
              world().survey.origins[i].comm_prepends);
  }
}

TEST_F(RibSurveyFixture, BatchedSweepMatchesOneAtATime) {
  // Batching several member origins per convergence cycle (and sharding
  // rounds across workers) is a pure throughput optimization: every
  // origin announces a distinct prefix and edge delays are prefix-local
  // functions of the seed, so per-origin views must be bit-identical to
  // the one-at-a-time sweep.
  auto flatten = [](const RibSurveyResult& survey) {
    std::vector<std::string> out;
    for (const OriginRibView& v : survey.origins) {
      std::string line = v.origin.to_string();
      line += '|';
      line += v.re_prepends ? std::to_string(*v.re_prepends) : "-";
      line += '|';
      line += v.comm_prepends ? std::to_string(*v.comm_prepends) : "-";
      line += '|';
      line += v.ripe_has_route ? (v.ripe_via_re ? "re" : "comm") : "none";
      line += '|';
      line += v.ripe_first_hop.to_string();
      out.push_back(std::move(line));
    }
    return out;
  };

  RibSurveyOptions solo;
  solo.batch_size = 1;
  const auto one_at_a_time =
      flatten(run_rib_survey(world().ecosystem, 4242, solo));

  RibSurveyOptions batched;
  batched.batch_size = 12;
  EXPECT_EQ(one_at_a_time, flatten(run_rib_survey(world().ecosystem, 4242, batched)));

  RibSurveyOptions sharded;
  sharded.batch_size = 12;
  sharded.workers = 4;
  EXPECT_EQ(one_at_a_time, flatten(run_rib_survey(world().ecosystem, 4242, sharded)));
}

TEST(PrependClassStrings, HumanReadable) {
  EXPECT_EQ(to_string(PrependClass::kEqual), "R=C");
  EXPECT_EQ(to_string(PrependClass::kMoreToComm), "R<C");
  EXPECT_EQ(to_string(PrependClass::kMoreToRe), "R>C");
  EXPECT_EQ(to_string(PrependClass::kNoCommodity), "no commodity");
}

}  // namespace
}  // namespace re::core
