// Tests for the RPKI/ROA table and IRR registry.
#include <gtest/gtest.h>

#include "bgp/rpki.h"
#include "bgp/speaker.h"

namespace re::bgp {
namespace {

using net::Asn;
using net::Prefix;

TEST(RoaTable, NotFoundWithoutCoveringRoa) {
  RoaTable table;
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.0.0/24"), Asn{1}),
            RovState::kNotFound);
}

TEST(RoaTable, ExactMatchValid) {
  RoaTable table;
  table.add({*Prefix::parse("163.253.0.0/16"), 24, Asn{11537}});
  EXPECT_EQ(table.validate(*Prefix::parse("163.253.63.0/24"), Asn{11537}),
            RovState::kValid);
}

TEST(RoaTable, WrongOriginInvalid) {
  RoaTable table;
  table.add({*Prefix::parse("163.253.0.0/16"), 24, Asn{11537}});
  EXPECT_EQ(table.validate(*Prefix::parse("163.253.63.0/24"), Asn{666}),
            RovState::kInvalid);
}

TEST(RoaTable, MaxLengthEnforced) {
  RoaTable table;
  table.add({*Prefix::parse("10.0.0.0/16"), 20, Asn{1}});
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.0.0/20"), Asn{1}),
            RovState::kValid);
  // A /24 is more specific than maxLength 20: invalid even from the
  // authorized origin.
  EXPECT_EQ(table.validate(*Prefix::parse("10.0.1.0/24"), Asn{1}),
            RovState::kInvalid);
}

TEST(RoaTable, AnyMatchingRoaValidates) {
  // Two ROAs for the same space: one for each origin (e.g. the paper's
  // dual-origin measurement prefix).
  RoaTable table;
  table.add({*Prefix::parse("163.253.63.0/24"), 24, Asn{11537}});
  table.add({*Prefix::parse("163.253.63.0/24"), 24, Asn{396955}});
  EXPECT_EQ(table.validate(*Prefix::parse("163.253.63.0/24"), Asn{11537}),
            RovState::kValid);
  EXPECT_EQ(table.validate(*Prefix::parse("163.253.63.0/24"), Asn{396955}),
            RovState::kValid);
  EXPECT_EQ(table.validate(*Prefix::parse("163.253.63.0/24"), Asn{1125}),
            RovState::kInvalid);
}

TEST(RoaTable, LessSpecificRoaCoversAnnouncement) {
  RoaTable table;
  table.add({*Prefix::parse("10.0.0.0/8"), 24, Asn{5}});
  EXPECT_EQ(table.validate(*Prefix::parse("10.99.3.0/24"), Asn{5}),
            RovState::kValid);
  EXPECT_EQ(table.validate(*Prefix::parse("10.99.3.0/24"), Asn{6}),
            RovState::kInvalid);
}

TEST(RoaTable, ValidateRouteUsesPathOrigin) {
  RoaTable table;
  table.add({*Prefix::parse("163.253.63.0/24"), 24, Asn{11537}});
  const AsPath path{Asn{3754}, Asn{11537}};
  EXPECT_EQ(table.validate_route(*Prefix::parse("163.253.63.0/24"), path),
            RovState::kValid);
}

TEST(RoaTable, CoveringSetListsAllRoas) {
  RoaTable table;
  table.add({*Prefix::parse("10.0.0.0/8"), 16, Asn{1}});
  table.add({*Prefix::parse("10.1.0.0/16"), 24, Asn{2}});
  table.add({*Prefix::parse("11.0.0.0/8"), 16, Asn{3}});
  const auto covering = table.covering(*Prefix::parse("10.1.2.0/24"));
  EXPECT_EQ(covering.size(), 2u);
  EXPECT_EQ(table.size(), 3u);
}

TEST(IrrRegistry, ExactRegistration) {
  IrrRegistry irr;
  irr.add({*Prefix::parse("163.253.63.0/24"), Asn{11537}, "RADB"});
  EXPECT_TRUE(irr.registered(*Prefix::parse("163.253.63.0/24"), Asn{11537}));
  EXPECT_FALSE(irr.registered(*Prefix::parse("163.253.63.0/24"), Asn{1}));
  // IRR route objects are exact-prefix, not covering.
  EXPECT_FALSE(irr.registered(*Prefix::parse("163.253.63.0/25"), Asn{11537}));
}

TEST(IrrRegistry, MultipleObjectsPerPrefix) {
  IrrRegistry irr;
  irr.add({*Prefix::parse("10.0.0.0/24"), Asn{1}, "RADB"});
  irr.add({*Prefix::parse("10.0.0.0/24"), Asn{2}, "RIPE"});
  EXPECT_TRUE(irr.registered(*Prefix::parse("10.0.0.0/24"), Asn{1}));
  EXPECT_TRUE(irr.registered(*Prefix::parse("10.0.0.0/24"), Asn{2}));
  EXPECT_EQ(irr.objects_for(*Prefix::parse("10.0.0.0/24")).size(), 2u);
  EXPECT_EQ(irr.size(), 2u);
}

// ------------------------------------------------ speaker ROV enforcement

TEST(SpeakerRov, DropsInvalidKeepsValidAndNotFound) {
  RoaTable roas;
  roas.add({*Prefix::parse("10.0.0.0/16"), 24, Asn{9}});

  Speaker s(Asn{42});
  Session session;
  session.neighbor = Asn{1};
  session.relationship = Relationship::kProvider;
  s.add_session(session);
  s.enable_rov(&roas);

  // Valid: authorized origin.
  UpdateMessage valid;
  valid.prefix = *Prefix::parse("10.0.1.0/24");
  valid.path = s.paths().intern(AsPath{Asn{1}, Asn{9}});
  EXPECT_TRUE(s.receive(Asn{1}, valid, 0));
  EXPECT_NE(s.best(valid.prefix), nullptr);

  // Invalid: wrong origin under a covering ROA — dropped.
  UpdateMessage hijack;
  hijack.prefix = *Prefix::parse("10.0.2.0/24");
  hijack.path = s.paths().intern(AsPath{Asn{1}, Asn{666}});
  EXPECT_FALSE(s.receive(Asn{1}, hijack, 0));
  EXPECT_EQ(s.best(hijack.prefix), nullptr);

  // NotFound: no covering ROA — accepted.
  UpdateMessage elsewhere;
  elsewhere.prefix = *Prefix::parse("172.16.0.0/24");
  elsewhere.path = s.paths().intern(AsPath{Asn{1}, Asn{666}});
  EXPECT_TRUE(s.receive(Asn{1}, elsewhere, 0));
  EXPECT_NE(s.best(elsewhere.prefix), nullptr);
}

TEST(SpeakerRov, InvalidUpdateImplicitlyWithdrawsPrior) {
  // A previously-valid route replaced by an invalid one disappears (the
  // update replaces the old route even though it is itself dropped).
  RoaTable roas;
  roas.add({*Prefix::parse("10.0.0.0/16"), 24, Asn{9}});
  Speaker s(Asn{42});
  Session session;
  session.neighbor = Asn{1};
  session.relationship = Relationship::kProvider;
  s.add_session(session);
  s.enable_rov(&roas);

  UpdateMessage valid;
  valid.prefix = *Prefix::parse("10.0.1.0/24");
  valid.path = s.paths().intern(AsPath{Asn{1}, Asn{9}});
  s.receive(Asn{1}, valid, 0);
  ASSERT_NE(s.best(valid.prefix), nullptr);

  UpdateMessage reorigin;  // same prefix, now from an unauthorized origin
  reorigin.prefix = valid.prefix;
  reorigin.path = s.paths().intern(AsPath{Asn{1}, Asn{666}});
  EXPECT_TRUE(s.receive(Asn{1}, reorigin, 1));
  EXPECT_EQ(s.best(valid.prefix), nullptr);
}

TEST(RovStateStrings, HumanReadable) {
  EXPECT_EQ(to_string(RovState::kNotFound), "not-found");
  EXPECT_EQ(to_string(RovState::kValid), "valid");
  EXPECT_EQ(to_string(RovState::kInvalid), "invalid");
}

}  // namespace
}  // namespace re::bgp
