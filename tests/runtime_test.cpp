// The deterministic parallel sweep engine: thread pool semantics and RNG
// stream splitting.
#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "netbase/rng.h"
#include "runtime/rng_streams.h"
#include "runtime/thread_pool.h"

namespace re::runtime {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  pool.parallel_for(ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const std::thread::id id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> after{0};
  pool.parallel_for(50, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, RunBatchRunsEveryTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back(
        [&, i] { hits[i].fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run_batch(tasks);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(97, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 97 * 96 / 2);
  }
}

TEST(RngStreamsTest, DerivedSeedIsAPureFunctionOfMasterAndIndex) {
  EXPECT_EQ(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
  EXPECT_NE(derive_stream_seed(42, 7), derive_stream_seed(42, 8));
  EXPECT_NE(derive_stream_seed(42, 7), derive_stream_seed(43, 7));
}

TEST(RngStreamsTest, SmallMastersProduceDistinctStreams) {
  // Tests commonly use master seeds 0, 1, 2, ...; adjacent (master, index)
  // pairs must still land far apart.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t master = 0; master < 8; ++master) {
    for (std::uint64_t index = 0; index < 256; ++index) {
      seeds.insert(derive_stream_seed(master, index));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 256u);
}

TEST(RngStreamsTest, StreamsAreStatisticallyIndependent) {
  // First draws across consecutive stream seeds should look uniform: the
  // mean of 4096 [0,1) draws concentrates near 0.5.
  double sum = 0.0;
  constexpr int kStreams = 4096;
  for (int i = 0; i < kStreams; ++i) {
    net::Rng rng(derive_stream_seed(99, static_cast<std::uint64_t>(i)));
    sum += rng.uniform();
  }
  const double mean = sum / kStreams;
  EXPECT_NEAR(mean, 0.5, 0.03);
}

// The determinism contract end to end: per-index streams written into
// per-index slots produce byte-identical output for any thread count.
TEST(ThreadPoolTest, ParallelSweepMatchesSerialBitForBit) {
  constexpr std::size_t kItems = 500;
  constexpr std::uint64_t kMaster = 20250529;

  auto sweep = [&](ThreadPool& pool) {
    std::vector<std::uint64_t> out(kItems);
    pool.parallel_for(kItems, [&](std::size_t i) {
      net::Rng rng(derive_stream_seed(kMaster, i));
      std::uint64_t acc = 0;
      const int draws = 1 + static_cast<int>(rng.below(64));  // uneven work
      for (int d = 0; d < draws; ++d) acc ^= rng.next();
      out[i] = acc;
    });
    return out;
  };

  ThreadPool serial(1);
  const std::vector<std::uint64_t> reference = sweep(serial);
  for (const std::size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(sweep(pool), reference) << threads << " threads";
  }
}

}  // namespace
}  // namespace re::runtime
