// The deterministic parallel sweep engine: thread pool semantics, RNG
// stream splitting, and the strict RE_* environment-knob parsers.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "netbase/rng.h"
#include "obs/metrics.h"
#include "runtime/env.h"
#include "runtime/perf_counters.h"
#include "runtime/rng_streams.h"
#include "runtime/thread_pool.h"

namespace re::runtime {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10'000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(64);
  pool.parallel_for(ran.size(), [&](std::size_t i) {
    ran[i] = std::this_thread::get_id();
  });
  for (const std::thread::id id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 17) throw std::runtime_error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<int> after{0};
  pool.parallel_for(50, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolTest, RunBatchRunsEveryTask) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(8);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back(
        [&, i] { hits[i].fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run_batch(tasks);
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, BackToBackJobsDoNotInterfere) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(97, [&](std::size_t i) {
      sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 97 * 96 / 2);
  }
}

TEST(RngStreamsTest, DerivedSeedIsAPureFunctionOfMasterAndIndex) {
  EXPECT_EQ(derive_stream_seed(42, 7), derive_stream_seed(42, 7));
  EXPECT_NE(derive_stream_seed(42, 7), derive_stream_seed(42, 8));
  EXPECT_NE(derive_stream_seed(42, 7), derive_stream_seed(43, 7));
}

TEST(RngStreamsTest, SmallMastersProduceDistinctStreams) {
  // Tests commonly use master seeds 0, 1, 2, ...; adjacent (master, index)
  // pairs must still land far apart.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t master = 0; master < 8; ++master) {
    for (std::uint64_t index = 0; index < 256; ++index) {
      seeds.insert(derive_stream_seed(master, index));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 256u);
}

TEST(RngStreamsTest, StreamsAreStatisticallyIndependent) {
  // First draws across consecutive stream seeds should look uniform: the
  // mean of 4096 [0,1) draws concentrates near 0.5.
  double sum = 0.0;
  constexpr int kStreams = 4096;
  for (int i = 0; i < kStreams; ++i) {
    net::Rng rng(derive_stream_seed(99, static_cast<std::uint64_t>(i)));
    sum += rng.uniform();
  }
  const double mean = sum / kStreams;
  EXPECT_NEAR(mean, 0.5, 0.03);
}

// The determinism contract end to end: per-index streams written into
// per-index slots produce byte-identical output for any thread count.
TEST(ThreadPoolTest, ParallelSweepMatchesSerialBitForBit) {
  constexpr std::size_t kItems = 500;
  constexpr std::uint64_t kMaster = 20250529;

  auto sweep = [&](ThreadPool& pool) {
    std::vector<std::uint64_t> out(kItems);
    pool.parallel_for(kItems, [&](std::size_t i) {
      net::Rng rng(derive_stream_seed(kMaster, i));
      std::uint64_t acc = 0;
      const int draws = 1 + static_cast<int>(rng.below(64));  // uneven work
      for (int d = 0; d < draws; ++d) acc ^= rng.next();
      out[i] = acc;
    });
    return out;
  };

  ThreadPool serial(1);
  const std::vector<std::uint64_t> reference = sweep(serial);
  for (const std::size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(sweep(pool), reference) << threads << " threads";
  }
}

TEST(EnvParseTest, PositiveSizeAcceptsOnlyWholeNumericStrings) {
  EXPECT_EQ(parse_positive_size("8"), 8u);
  EXPECT_EQ(parse_positive_size("  16 "), 16u);
  EXPECT_EQ(parse_positive_size("1"), 1u);
  // The old atol behavior: "8garbage" parsed as 8 and "abc" as 0. Both
  // must be rejected outright now.
  EXPECT_EQ(parse_positive_size("8garbage"), std::nullopt);
  EXPECT_EQ(parse_positive_size("abc"), std::nullopt);
  EXPECT_EQ(parse_positive_size(""), std::nullopt);
  EXPECT_EQ(parse_positive_size("0"), std::nullopt);
  EXPECT_EQ(parse_positive_size("-4"), std::nullopt);
  EXPECT_EQ(parse_positive_size("4.5"), std::nullopt);
  EXPECT_EQ(parse_positive_size("99999999999999999999999"), std::nullopt);
}

TEST(EnvParseTest, PositiveDoubleAcceptsOnlyFinitePositives) {
  EXPECT_EQ(parse_positive_double("0.25"), 0.25);
  EXPECT_EQ(parse_positive_double("1"), 1.0);
  EXPECT_EQ(parse_positive_double(" 2e-1 "), 0.2);
  EXPECT_EQ(parse_positive_double("0.5x"), std::nullopt);
  EXPECT_EQ(parse_positive_double("nan"), std::nullopt);
  EXPECT_EQ(parse_positive_double("inf"), std::nullopt);
  EXPECT_EQ(parse_positive_double("0"), std::nullopt);
  EXPECT_EQ(parse_positive_double("-0.5"), std::nullopt);
  EXPECT_EQ(parse_positive_double(""), std::nullopt);
}

TEST(EnvParseTest, ThreadCountAcceptsAutoAndExplicitCounts) {
  // "auto" resolves to the reported hardware width, clamped to >= 1 when
  // the runtime reports 0 (unknown).
  EXPECT_EQ(parse_thread_count("auto", 8), 8u);
  EXPECT_EQ(parse_thread_count(" auto ", 4), 4u);
  EXPECT_EQ(parse_thread_count("auto", 0), 1u);
  // Explicit numeric counts pass through unclamped — the stress benches
  // oversubscribe on purpose.
  EXPECT_EQ(parse_thread_count("16", 2), 16u);
  EXPECT_EQ(parse_thread_count("1", 8), 1u);
  EXPECT_EQ(parse_thread_count("AUTO", 8), std::nullopt);
  EXPECT_EQ(parse_thread_count("0", 8), std::nullopt);
  EXPECT_EQ(parse_thread_count("auto8", 8), std::nullopt);
  EXPECT_EQ(parse_thread_count("", 8), std::nullopt);
}

TEST(EnvParseTest, EnvThreadCountReadsAutoFromEnvironment) {
  ::unsetenv("RE_TEST_KNOB");
  EXPECT_EQ(env_thread_count("RE_TEST_KNOB", 5), 5u);
  ::setenv("RE_TEST_KNOB", "3", 1);
  EXPECT_EQ(env_thread_count("RE_TEST_KNOB", 5), 3u);
  ::setenv("RE_TEST_KNOB", "auto", 1);
  const std::size_t hw = std::thread::hardware_concurrency();
  EXPECT_EQ(env_thread_count("RE_TEST_KNOB", 5), hw == 0 ? 1u : hw);
  ::unsetenv("RE_TEST_KNOB");
}

TEST(EnvParseTest, EnvHelpersFallBackWhenUnset) {
  ::unsetenv("RE_TEST_KNOB");
  EXPECT_EQ(env_positive_size("RE_TEST_KNOB", 7), 7u);
  EXPECT_EQ(env_positive_double("RE_TEST_KNOB", 0.5), 0.5);
  ::setenv("RE_TEST_KNOB", "", 1);
  EXPECT_EQ(env_positive_size("RE_TEST_KNOB", 7), 7u);
  ::setenv("RE_TEST_KNOB", "12", 1);
  EXPECT_EQ(env_positive_size("RE_TEST_KNOB", 7), 12u);
  ::unsetenv("RE_TEST_KNOB");
}

TEST(EnvParseDeathTest, MalformedEnvValueAbortsLoudly) {
  ::setenv("RE_TEST_KNOB", "8garbage", 1);
  EXPECT_EXIT(env_positive_size("RE_TEST_KNOB", 7), ::testing::ExitedWithCode(2),
              "RE_TEST_KNOB");
  EXPECT_EXIT(env_positive_double("RE_TEST_KNOB", 0.5),
              ::testing::ExitedWithCode(2), "RE_TEST_KNOB");
  EXPECT_EXIT(env_thread_count("RE_TEST_KNOB", 1),
              ::testing::ExitedWithCode(2), "RE_TEST_KNOB");
  ::unsetenv("RE_TEST_KNOB");
}

TEST(EnvParseTest, EnvStringTrimsAndRejectsBlank) {
  EXPECT_EQ(parse_env_string("trace.json"), "trace.json");
  EXPECT_EQ(parse_env_string("  out/trace.json \t"), "out/trace.json");
  EXPECT_FALSE(parse_env_string("").has_value());
  EXPECT_FALSE(parse_env_string("   \t ").has_value());

  ::unsetenv("RE_TEST_KNOB");
  EXPECT_EQ(env_string("RE_TEST_KNOB", "fallback"), "fallback");
  EXPECT_EQ(env_string("RE_TEST_KNOB", ""), "");
  ::setenv("RE_TEST_KNOB", " a-trace.json ", 1);
  EXPECT_EQ(env_string("RE_TEST_KNOB", "fallback"), "a-trace.json");
  ::unsetenv("RE_TEST_KNOB");
}

TEST(EnvParseDeathTest, BlankStringKnobAbortsLoudly) {
  // Unlike the numeric knobs (where set-but-empty means "use the
  // default"), a blank RE_TRACE is a request for a trace with no file to
  // put it in — the strict-env convention says refuse, don't guess.
  ::setenv("RE_TEST_KNOB", "", 1);
  EXPECT_EXIT(env_string("RE_TEST_KNOB", "fallback"),
              ::testing::ExitedWithCode(2), "RE_TEST_KNOB");
  ::setenv("RE_TEST_KNOB", "   ", 1);
  EXPECT_EXIT(env_string("RE_TEST_KNOB", "fallback"),
              ::testing::ExitedWithCode(2), "RE_TEST_KNOB");
  ::unsetenv("RE_TEST_KNOB");
}

// Pins the aggregation semantics of operator+= for the fields PRs 3-6
// added. Two classes, chosen deliberately:
//   - deltas (forks, probe_resolve_seconds, speakers_touched, ...) sum:
//     folding N runs yields the total work the sweep paid for;
//   - instance gauges (intra_workers, arena_shared_bytes, interned_paths,
//     arena_bytes) take the max: they describe the network, not the run,
//     so folding runs over the same network must not inflate them.
// A regression here silently corrupts every bench summary line.
TEST(PerfCountersTest, AggregationPinsSumVersusMaxSemantics) {
  PerfCounters a;
  a.messages_delivered = 100;
  a.interned_paths = 50;
  a.arena_bytes = 4096;
  a.intra_workers = 4;
  a.forks = 1;
  a.arena_shared_bytes = 2048;
  a.probe_resolve_seconds = 1.5;
  a.speakers_touched = 30;
  a.checkpoints = 2;

  PerfCounters b;
  b.messages_delivered = 10;
  b.interned_paths = 40;   // smaller snapshot: must NOT win
  b.arena_bytes = 8192;    // larger snapshot: must win
  b.intra_workers = 2;     // narrower run: must NOT win
  b.forks = 1;
  b.arena_shared_bytes = 1024;  // smaller: must NOT win
  b.probe_resolve_seconds = 0.25;
  b.speakers_touched = 5;
  b.checkpoints = 1;

  a += b;
  // Summed deltas.
  EXPECT_EQ(a.messages_delivered, 110u);
  EXPECT_EQ(a.forks, 2u);  // fork count across folded runs, not a flag
  EXPECT_DOUBLE_EQ(a.probe_resolve_seconds, 1.75);
  EXPECT_EQ(a.speakers_touched, 35u);  // documented over-count on repeats
  EXPECT_EQ(a.checkpoints, 3u);
  // Max'd instance gauges.
  EXPECT_EQ(a.interned_paths, 50u);
  EXPECT_EQ(a.arena_bytes, 8192u);
  EXPECT_EQ(a.intra_workers, 4u);
  EXPECT_EQ(a.arena_shared_bytes, 2048u);
}

TEST(PerfCountersTest, PublishFoldsIntoRegistryLikeOperatorPlusEquals) {
  PerfCounters perf;
  perf.messages_delivered = 7;
  perf.intra_workers = 3;
  perf.arena_shared_bytes = 512;
  publish_perf_metrics(perf);
  const std::uint64_t after_first =
      obs::registry().counter("perf.messages_delivered").value();

  PerfCounters second;
  second.messages_delivered = 5;
  second.intra_workers = 2;  // narrower: the gauge must keep 3
  second.arena_shared_bytes = 256;
  publish_perf_metrics(second);

  EXPECT_EQ(obs::registry().counter("perf.messages_delivered").value(),
            after_first + 5);
  EXPECT_GE(obs::registry().gauge("perf.intra_workers").value(), 3.0);
  EXPECT_GE(obs::registry().gauge("perf.arena_shared_bytes").value(), 512.0);
}

}  // namespace
}  // namespace re::runtime
