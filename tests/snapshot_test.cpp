// Tests for the converged-world checkpoint/fork engine: snapshot
// serialization round-trips, fork-vs-fresh bit-identity at every worker
// count, resume-mid-sweep equivalence, and the partial-convergence
// window flags. The contracts here are exactly the ones the warm bench
// paths rely on, so a regression fails loudly before it can poison a
// sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/experiment.h"
#include "io/snapshot_io.h"
#include "netbase/binio.h"
#include "netbase/clock.h"
#include "probing/seeds.h"
#include "topology/ecosystem.h"

namespace re::core {
namespace {

// Round checkpoints live in a plain map for the resume tests — the
// controller only needs the interface, not real files.
class MemoryStore : public CheckpointStore {
 public:
  bool save(const std::string& key,
            const std::vector<std::uint8_t>& bytes) override {
    blobs_[key] = bytes;
    ++saves_;
    return true;
  }
  std::optional<std::vector<std::uint8_t>> load(
      const std::string& key) override {
    const auto it = blobs_.find(key);
    if (it == blobs_.end()) return std::nullopt;
    return it->second;
  }
  std::map<std::string, std::vector<std::uint8_t>>& blobs() { return blobs_; }
  int saves() const { return saves_; }

 private:
  std::map<std::string, std::vector<std::uint8_t>> blobs_;
  int saves_ = 0;
};

struct World {
  topo::Ecosystem ecosystem;
  probing::SelectionResult selection;
};

World* make_world() {
  topo::EcosystemParams params;
  params = params.scaled(0.05);
  params.seed = 20250529;
  auto* world = new World{topo::Ecosystem::generate(params), {}};
  const probing::SeedDatabase db = probing::SeedDatabase::generate(
      world->ecosystem, probing::SeedGenParams{});
  world->selection = probing::select_probe_seeds(world->ecosystem, db, 11);
  return world;
}

class SnapshotFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = make_world(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static const World& world() { return *world_; }

  static ExperimentConfig base_config() {
    ExperimentConfig config;
    config.experiment = ReExperiment::kInternet2;
    config.seed = 502;
    return config;
  }

  static ExperimentController controller(const ExperimentConfig& config) {
    return ExperimentController(world().ecosystem, world().selection.seeds,
                                config);
  }

 private:
  static const World* world_;
};
const World* SnapshotFixture::world_ = nullptr;

// ------------------------------------------------------- snapshot codec

TEST_F(SnapshotFixture, SnapshotEncodeDecodeRoundTripsDigest) {
  auto base = controller(base_config()).checkpoint_baseline();
  const std::uint64_t before = base.network.digest();

  net::BinaryWriter writer;
  base.network.encode(writer);
  const std::vector<std::uint8_t> bytes = writer.bytes();
  ASSERT_FALSE(bytes.empty());

  net::BinaryReader reader(bytes);
  const bgp::NetworkSnapshot decoded = bgp::NetworkSnapshot::decode(reader);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(decoded.digest(), before);

  // The decoded snapshot is a working network, not just equal bytes.
  EXPECT_EQ(decoded.fork()->state_digest(), base.network.fork()->state_digest());
}

TEST_F(SnapshotFixture, TruncatedSnapshotFailsDecodeLoudly) {
  auto base = controller(base_config()).checkpoint_baseline();
  net::BinaryWriter writer;
  base.network.encode(writer);
  std::vector<std::uint8_t> bytes = writer.bytes();
  bytes.resize(bytes.size() / 2);
  net::BinaryReader reader(bytes);
  (void)bgp::NetworkSnapshot::decode(reader);
  EXPECT_FALSE(reader.ok());
}

TEST_F(SnapshotFixture, ConcurrentForksAreIndependentAndIdentical) {
  // Fork one snapshot from several threads at once (the TSan target for
  // the shared frozen path arena), then advance each fork independently
  // and check they all reach the same state.
  auto base = controller(base_config()).checkpoint_baseline();
  constexpr int kForks = 4;
  std::uint64_t digests[kForks] = {};
  std::vector<std::thread> threads;
  for (int i = 0; i < kForks; ++i) {
    threads.emplace_back([&, i] {
      auto network = base.network.fork();
      network->run_to_convergence();
      digests[i] = network->state_digest();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kForks; ++i) EXPECT_EQ(digests[i], digests[0]) << i;
}

// ------------------------------------------------------- fork vs fresh

TEST_F(SnapshotFixture, ForkVsFreshBitIdenticalSerial) {
  const ExperimentConfig config = base_config();
  const ExperimentResult cold = controller(config).run();
  const auto base = controller(config).checkpoint_baseline();
  const ExperimentResult warm = controller(config).run(base);
  EXPECT_EQ(result_digest(warm), result_digest(cold));
}

TEST_F(SnapshotFixture, ForkVsFreshBitIdenticalSharded) {
  // intra_workers > 1 shards the propagation sweep; the digest must not
  // move relative to the serial cold run above.
  ExperimentConfig serial = base_config();
  const ExperimentResult cold = controller(serial).run();

  ExperimentConfig sharded = base_config();
  sharded.intra_workers = 3;
  const auto base = controller(sharded).checkpoint_baseline();
  const ExperimentResult warm = controller(sharded).run(base);
  EXPECT_EQ(result_digest(warm), result_digest(cold));
}

TEST_F(SnapshotFixture, SharedBaselineSeedForksAcrossTrialSeeds) {
  // The bench_seeds sweep shape: trials differ in `seed` but share
  // `baseline_seed`, so one checkpoint serves all of them.
  auto trial_config = [](std::uint64_t seed) {
    ExperimentConfig config;
    config.experiment = ReExperiment::kInternet2;
    config.seed = seed;
    config.baseline_seed = 777;
    return config;
  };
  const auto base = controller(trial_config(1)).checkpoint_baseline();
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{2}}) {
    const ExperimentResult cold = controller(trial_config(seed)).run();
    const ExperimentResult warm = controller(trial_config(seed)).run(base);
    EXPECT_EQ(result_digest(warm), result_digest(cold)) << "seed " << seed;
  }
}

TEST_F(SnapshotFixture, IncompatibleCheckpointFallsBackToColdRun) {
  const auto base = controller(base_config()).checkpoint_baseline();

  ExperimentConfig other = base_config();
  other.experiment = ReExperiment::kSurf;
  other.seed = 501;
  EXPECT_FALSE(controller(other).compatible(base));
  // run(base) on the incompatible config still produces the cold result.
  const ExperimentResult cold = controller(other).run();
  const ExperimentResult fallback = controller(other).run(base);
  EXPECT_EQ(result_digest(fallback), result_digest(cold));
}

// ------------------------------------------------------- resume mid-sweep

TEST_F(SnapshotFixture, ResumeMidSweepMatchesUninterruptedRun) {
  const ExperimentResult uninterrupted = controller(base_config()).run();

  MemoryStore store;
  ExperimentConfig aborted = base_config();
  aborted.checkpoint_store = &store;
  aborted.checkpoint_key = "resume-test";
  aborted.abort_after_round = 3;
  const ExperimentResult partial = controller(aborted).run();
  EXPECT_EQ(partial.windows.size(), 4u);  // rounds 0..3 then the abort
  EXPECT_GT(store.saves(), 0);

  ExperimentConfig resumed = base_config();
  resumed.checkpoint_store = &store;
  resumed.checkpoint_key = "resume-test";
  resumed.resume = true;
  const ExperimentResult result = controller(resumed).run();
  EXPECT_EQ(result_digest(result), result_digest(uninterrupted));
}

TEST_F(SnapshotFixture, ResumeWithCorruptCheckpointFallsBackToColdRun) {
  MemoryStore store;
  ExperimentConfig config = base_config();
  config.checkpoint_store = &store;
  config.checkpoint_key = "corrupt-test";
  const ExperimentResult uninterrupted = controller(config).run();

  auto& blob = store.blobs().at("corrupt-test");
  blob.resize(blob.size() / 3);
  ExperimentConfig resumed = config;
  resumed.resume = true;
  const ExperimentResult result = controller(resumed).run();
  EXPECT_EQ(result_digest(result), result_digest(uninterrupted));
}

TEST_F(SnapshotFixture, ResumeRejectsCheckpointFromDifferentSeed) {
  MemoryStore store;
  ExperimentConfig config = base_config();
  config.checkpoint_store = &store;
  config.abort_after_round = 2;
  (void)controller(config).run();

  // A resume under a different seed must not splice foreign state; it
  // reruns cold and so matches that seed's uninterrupted digest.
  ExperimentConfig other = base_config();
  other.seed = 503;
  const ExperimentResult cold = controller(other).run();
  other.checkpoint_store = &store;
  other.resume = true;
  const ExperimentResult resumed = controller(other).run();
  EXPECT_EQ(result_digest(resumed), result_digest(cold));
}

// ------------------------------------------------------- disk store

TEST(FileCheckpointStore, RoundTripsAndSurvivesResave) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "re-ckpt-roundtrip";
  std::filesystem::remove_all(dir);
  io::FileCheckpointStore store(dir.string());

  const std::vector<std::uint8_t> blob = {0x52, 0x45, 0x00, 0xff, 0x10};
  ASSERT_TRUE(store.save("surf run/1", blob));
  EXPECT_EQ(store.load("surf run/1"), blob);

  const std::vector<std::uint8_t> next = {0x01};
  ASSERT_TRUE(store.save("surf run/1", next));
  EXPECT_EQ(store.load("surf run/1"), next);
  EXPECT_EQ(store.load("missing"), std::nullopt);
}

TEST(FileCheckpointStore, CorruptFileLoadsAsNothing) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "re-ckpt-corrupt";
  std::filesystem::remove_all(dir);
  io::FileCheckpointStore store(dir.string());
  ASSERT_TRUE(store.save("key", {1, 2, 3, 4, 5, 6, 7, 8}));

  const std::string path = store.path_for("key");
  // Flip one payload byte: the checksum must catch it.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -1, SEEK_END);
  std::fputc(0x7f, f);
  std::fclose(f);
  EXPECT_EQ(store.load("key"), std::nullopt);

  // Truncated below the header is also nothing, not a crash.
  std::filesystem::resize_file(path, 4);
  EXPECT_EQ(store.load("key"), std::nullopt);
}

// ----------------------------------------------- partial-convergence flag

TEST_F(SnapshotFixture, FullConvergenceMarksEveryWindowConverged) {
  const ExperimentResult result = controller(base_config()).run();
  for (const RoundWindow& w : result.windows) {
    EXPECT_TRUE(w.converged) << w.config.label();
    EXPECT_LE(w.converged_at, w.probe_start) << w.config.label();
  }
}

TEST_F(SnapshotFixture, PartialConvergenceReportsHonestTimestamps) {
  // With a one-second wait BGP cannot settle before probing; the windows
  // must say so instead of reporting the probe time as convergence (the
  // old fake-timestamp bug).
  ExperimentConfig config = base_config();
  config.full_convergence = false;
  config.convergence_wait = net::kSecond;
  const ExperimentResult result = controller(config).run();
  bool any_unconverged = false;
  for (const RoundWindow& w : result.windows) {
    EXPECT_LE(w.converged_at, w.probe_start) << w.config.label();
    if (!w.converged) {
      any_unconverged = true;
      // The honest timestamp marks the last delivery before the probe,
      // never the probe itself.
      EXPECT_LT(w.converged_at, w.probe_start) << w.config.label();
    }
  }
  EXPECT_TRUE(any_unconverged);
}

}  // namespace
}  // namespace re::core
