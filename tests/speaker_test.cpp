// Unit tests for the per-AS BGP speaker: import processing, decision
// integration, export construction, and the re_only scope.
#include <gtest/gtest.h>

#include "bgp/speaker.h"

namespace re::bgp {
namespace {

using net::Asn;
using net::Prefix;

const Prefix kPrefix = *Prefix::parse("163.253.63.0/24");

Session make_session(Asn neighbor, Relationship rel, bool re_edge,
                     std::uint32_t router_id = 0) {
  Session s;
  s.neighbor = neighbor;
  s.relationship = rel;
  s.re_edge = re_edge;
  s.router_id = router_id ? router_id : neighbor.value();
  return s;
}

// Updates carry PathIds, so announcements are interned into the receiving
// speaker's own table (standalone speakers each own one).
UpdateMessage announce(Speaker& s, const AsPath& path, bool re_only = false) {
  UpdateMessage m;
  m.prefix = kPrefix;
  m.path = s.paths().intern(path);
  m.re_only = re_only;
  return m;
}

UpdateMessage withdraw() {
  UpdateMessage m;
  m.prefix = kPrefix;
  m.withdraw = true;
  return m;
}

TEST(Speaker, InstallsRouteFromNeighbor) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  EXPECT_TRUE(s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0));
  const Route* best = s.best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, Asn{1});
  EXPECT_EQ(s.paths().origin(best->path), Asn{9});
}

TEST(Speaker, IgnoresUpdatesFromUnknownNeighbor) {
  Speaker s(Asn{42});
  EXPECT_FALSE(s.receive(Asn{1}, announce(s, AsPath{Asn{1}}), 0));
  EXPECT_EQ(s.best(kPrefix), nullptr);
}

TEST(Speaker, DropsLoopedPaths) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  EXPECT_FALSE(s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{42}, Asn{9}}), 0));
  EXPECT_EQ(s.best(kPrefix), nullptr);
}

TEST(Speaker, WithdrawRemovesRoute) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}}), 0);
  EXPECT_TRUE(s.receive(Asn{1}, withdraw(), 1));
  EXPECT_EQ(s.best(kPrefix), nullptr);
  // Withdrawing again is a no-op.
  EXPECT_FALSE(s.receive(Asn{1}, withdraw(), 2));
}

TEST(Speaker, DuplicateAnnouncementPreservesRouteAge) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 100);
  EXPECT_FALSE(s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 900));
  EXPECT_EQ(s.best(kPrefix)->established_at, 100);
}

TEST(Speaker, AttributeChangeResetsRouteAge) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 100);
  // A prepend change is an attribute change.
  EXPECT_TRUE(s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}, Asn{9}}), 900));
  EXPECT_EQ(s.best(kPrefix)->established_at, 900);
}

TEST(Speaker, PicksHigherLocalPrefNeighbor) {
  Speaker s(Asn{42});
  s.import_policy().re_stance = ReStance::kPreferRe;
  s.add_session(make_session(Asn{1}, Relationship::kProvider, true));   // R&E
  s.add_session(make_session(Asn{2}, Relationship::kProvider, false));  // comm.
  s.receive(Asn{2}, announce(s, AsPath{Asn{2}, Asn{9}}), 0);
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{7}, Asn{8}, Asn{9}}), 0);
  // R&E wins despite the longer path.
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{1});
  EXPECT_EQ(s.best_decided_by(kPrefix), DecisionStep::kLocalPref);
}

TEST(Speaker, EqualPrefFallsToPathLength) {
  Speaker s(Asn{42});
  s.import_policy().re_stance = ReStance::kEqualPref;
  s.add_session(make_session(Asn{1}, Relationship::kProvider, true));
  s.add_session(make_session(Asn{2}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{7}, Asn{9}}), 0);
  s.receive(Asn{2}, announce(s, AsPath{Asn{2}, Asn{9}}), 0);
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{2});
  EXPECT_EQ(s.best_decided_by(kPrefix), DecisionStep::kAsPathLength);
}

TEST(Speaker, RejectReRoutesLeavesOnlyCommodity) {
  Speaker s(Asn{42});
  s.import_policy().reject_re_routes = true;
  s.add_session(make_session(Asn{1}, Relationship::kProvider, true));
  s.add_session(make_session(Asn{2}, Relationship::kProvider, false));
  EXPECT_FALSE(s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0));
  EXPECT_TRUE(s.receive(Asn{2}, announce(s, AsPath{Asn{2}, Asn{8}, Asn{9}}), 0));
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{2});
}

TEST(Speaker, LocalOriginationBeatsLearnedRoutes) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  EXPECT_TRUE(s.originate(kPrefix, 1));
  const Route* best = s.best(kPrefix);
  ASSERT_NE(best, nullptr);
  EXPECT_FALSE(best->learned_from.valid());
  EXPECT_TRUE(s.originates(kPrefix));
  EXPECT_TRUE(s.withdraw_origination(kPrefix, 2));
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{1});
}

TEST(Speaker, ExportPrependsOwnAsn) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.add_session(make_session(Asn{2}, Relationship::kCustomer, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  const Session* to = s.session_to(Asn{2});
  const auto msg = s.eligible_announcement(*to, kPrefix);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(s.paths().to_string(msg->path), "42 1 9");
}

TEST(Speaker, ExportAppliesConfiguredPrepends) {
  Speaker s(Asn{42});
  s.export_policy().default_prepend = 2;
  s.add_session(make_session(Asn{2}, Relationship::kCustomer, false));
  s.originate(kPrefix, 0);
  const auto msg = s.eligible_announcement(*s.session_to(Asn{2}), kPrefix);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(s.paths().to_string(msg->path), "42 42 42");
}

TEST(Speaker, SplitHorizonNeverEchoesBack) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kCustomer, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  EXPECT_FALSE(s.eligible_announcement(*s.session_to(Asn{1}), kPrefix));
}

TEST(Speaker, GaoRexfordExportThroughSpeaker) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.add_session(make_session(Asn{2}, Relationship::kPeer, false));
  s.add_session(make_session(Asn{3}, Relationship::kCustomer, false));
  // Provider-learned route: only the customer may hear it.
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  EXPECT_FALSE(s.eligible_announcement(*s.session_to(Asn{2}), kPrefix));
  EXPECT_TRUE(s.eligible_announcement(*s.session_to(Asn{3}), kPrefix));
}

TEST(Speaker, ReOnlyRoutesStayOnReFabric) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kCustomer, true));
  s.add_session(make_session(Asn{2}, Relationship::kCustomer, false));
  s.add_session(make_session(Asn{3}, Relationship::kCustomer, true));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}, /*re_only=*/true), 0);
  EXPECT_FALSE(s.eligible_announcement(*s.session_to(Asn{2}), kPrefix));
  const auto re_export = s.eligible_announcement(*s.session_to(Asn{3}), kPrefix);
  ASSERT_TRUE(re_export.has_value());
  EXPECT_TRUE(re_export->re_only);
}

TEST(Speaker, OriginationScopingToReOnlySessions) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, true));
  s.add_session(make_session(Asn{2}, Relationship::kProvider, false));
  OriginationOptions options;
  options.to_commodity_sessions = false;
  s.originate(kPrefix, 0, options);
  EXPECT_TRUE(s.eligible_announcement(*s.session_to(Asn{1}), kPrefix));
  EXPECT_FALSE(s.eligible_announcement(*s.session_to(Asn{2}), kPrefix));
}

TEST(Speaker, ExportPathBlockFilters) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kPeer, true));
  s.add_session(make_session(Asn{3}, Relationship::kCustomer, true));
  s.set_re_transit_between_peers(true);
  s.export_policy().neighbor_path_block[Asn{3}] = {Asn{11537}};
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{11537}}), 0);
  EXPECT_FALSE(s.eligible_announcement(*s.session_to(Asn{3}), kPrefix));
}

TEST(Speaker, ExportToReturnsWithdrawWhenNotEligible) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{2}, Relationship::kCustomer, false));
  const auto msg = s.export_to(*s.session_to(Asn{2}), kPrefix);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->withdraw);
}

TEST(Speaker, BestCommodityIgnoresReRoutes) {
  Speaker s(Asn{42});
  s.import_policy().re_stance = ReStance::kPreferRe;
  s.add_session(make_session(Asn{1}, Relationship::kProvider, true));
  s.add_session(make_session(Asn{2}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  s.receive(Asn{2}, announce(s, AsPath{Asn{2}, Asn{8}, Asn{9}}), 0);
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{1});
  const Route* commodity = s.best_commodity(kPrefix);
  ASSERT_NE(commodity, nullptr);
  EXPECT_EQ(commodity->learned_from, Asn{2});
}

TEST(Speaker, BestCommodityNullWhenOnlyReRoutes) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, true));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  EXPECT_EQ(s.best_commodity(kPrefix), nullptr);
}

TEST(Speaker, CandidatesSortedAndComplete) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{5}, Relationship::kProvider, false));
  s.add_session(make_session(Asn{3}, Relationship::kProvider, false));
  s.receive(Asn{5}, announce(s, AsPath{Asn{5}, Asn{9}}), 0);
  s.receive(Asn{3}, announce(s, AsPath{Asn{3}, Asn{9}}), 0);
  const auto candidates = s.candidates(kPrefix);
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].learned_from, Asn{3});
  EXPECT_EQ(candidates[1].learned_from, Asn{5});
}

TEST(Speaker, DampingSuppressesFlappingNeighbor) {
  Speaker s(Asn{42});
  s.damping().enabled = true;
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.add_session(make_session(Asn{2}, Relationship::kProvider, false));
  // Stable alternative with a longer path.
  s.receive(Asn{2}, announce(s, AsPath{Asn{2}, Asn{8}, Asn{9}}), 0);
  // Flap the short route repeatedly.
  net::SimTime t = 0;
  for (int i = 0; i < 4; ++i) {
    s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), t);
    t += 10;
    s.receive(Asn{1}, withdraw(), t);
    t += 10;
  }
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), t);
  // The flapping route is suppressed; the stable one wins.
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{2});
  // After the penalty decays, reevaluation restores the shorter route.
  EXPECT_TRUE(s.reevaluate(kPrefix, t + 3 * net::kHour));
  EXPECT_EQ(s.best(kPrefix)->learned_from, Asn{1});
}

TEST(Speaker, ClearPrefixForgetsEverything) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  s.receive(Asn{1}, announce(s, AsPath{Asn{1}, Asn{9}}), 0);
  s.clear_prefix(kPrefix);
  EXPECT_EQ(s.best(kPrefix), nullptr);
  EXPECT_TRUE(s.known_prefixes().empty());
}

TEST(Speaker, DefaultRouteSessionLookup) {
  Speaker s(Asn{42});
  s.add_session(make_session(Asn{1}, Relationship::kProvider, false));
  EXPECT_EQ(s.default_route_session(), nullptr);
  s.set_session_default_route(Asn{1});
  ASSERT_NE(s.default_route_session(), nullptr);
  EXPECT_EQ(s.default_route_session()->neighbor, Asn{1});
}

}  // namespace
}  // namespace re::bgp
