// Tests for the Figure 7 state model — including the cross-check between
// the analytic prediction and the micro-simulation on a real BgpNetwork.
#include <gtest/gtest.h>

#include "core/state_model.h"

namespace re::core {
namespace {

std::string render(const std::vector<SelectedRoute>& states) {
  std::string out;
  for (const SelectedRoute s : states) {
    out += s == SelectedRoute::kRe ? 'R' : 'C';
  }
  return out;
}

// -------------------------------------------------------- analytic model

TEST(StateModel, CaseA_ReShorterBy4) {
  // R&E shorter by 4: prepends keep commodity ahead until the very start;
  // the network switches as soon as the R&E path undercuts.
  StateModelConfig config;
  config.re_advantage = 4;
  const auto states = predict_selection(config, paper_schedule());
  // 4-0: equal lengths, commodity older -> C; from 3-0 on R&E shorter.
  EXPECT_EQ(render(states), "CRRRRRRRR");
}

TEST(StateModel, CaseE_EqualLengths) {
  StateModelConfig config;
  config.re_advantage = 0;
  const auto states = predict_selection(config, paper_schedule());
  // R&E longer through the R&E-prepend phase; tie at 0-0 (commodity older
  // because the R&E route was refreshed at every step) -> C; R&E wins once
  // commodity prepends start.
  EXPECT_EQ(render(states), "CCCCCRRRR");
}

TEST(StateModel, CaseI_ReLongerBy4) {
  StateModelConfig config;
  config.re_advantage = -4;
  const auto states = predict_selection(config, paper_schedule());
  // Commodity wins until its prepends exceed the R&E handicap; tie at 0-4
  // resolves to R&E because by then the R&E route is older.
  EXPECT_EQ(render(states), "CCCCCCCCR");
}

TEST(StateModel, AllLengthCasesSwitchAtMostOnce) {
  // The prepend ordering guarantees the single-switch signature (§3.3) —
  // the property that makes Switch-to-R&E identifiable as equal localpref.
  for (int advantage = -4; advantage <= 4; ++advantage) {
    StateModelConfig config;
    config.re_advantage = advantage;
    const auto states = predict_selection(config, paper_schedule());
    int transitions = 0;
    for (std::size_t i = 1; i < states.size(); ++i) {
      transitions += states[i] != states[i - 1] ? 1 : 0;
    }
    EXPECT_LE(transitions, 1) << "advantage " << advantage;
    if (transitions == 1) {
      EXPECT_EQ(states.front(), SelectedRoute::kCommodity);
      EXPECT_EQ(states.back(), SelectedRoute::kRe);
    }
  }
}

TEST(StateModel, LaterSwitchForLongerRePaths) {
  // The switch round is monotone in the R&E handicap — the mechanism
  // behind Figure 8's Participant/Peer-NREN offset.
  int previous_switch = -1;
  for (int advantage = 4; advantage >= -3; --advantage) {
    StateModelConfig config;
    config.re_advantage = advantage;
    const auto states = predict_selection(config, paper_schedule());
    int switch_round = -1;
    for (std::size_t i = 0; i < states.size(); ++i) {
      if (states[i] == SelectedRoute::kRe) {
        switch_round = static_cast<int>(i);
        break;
      }
    }
    ASSERT_NE(switch_round, -1) << "advantage " << advantage;
    EXPECT_GE(switch_round, previous_switch) << "advantage " << advantage;
    previous_switch = switch_round;
  }
}

TEST(StateModel, CaseJ_RouteAgeCommodityOlder) {
  // Appendix A case J row 1: path length ignored, commodity route older at
  // the start -> the network switches exactly at 0-1, when the commodity
  // route's age resets.
  StateModelConfig config;
  config.use_path_length = false;
  const auto states = predict_selection(config, paper_schedule());
  EXPECT_EQ(render(states), "CCCCCRRRR");
}

TEST(StateModel, CaseJ_RouteAgeReOlder) {
  // Row 2: R&E older at the start; the first R&E prepend change resets its
  // age, flipping to commodity, until the commodity route is refreshed.
  StateModelConfig config;
  config.use_path_length = false;
  config.re_older_at_start = true;
  const auto states = predict_selection(config, paper_schedule());
  EXPECT_EQ(render(states), "RCCCCRRRR");
}

TEST(StateModel, ArbitraryTieBreakVariants) {
  StateModelConfig config;
  config.re_advantage = 0;
  config.tie_break = TieBreak::kArbitraryRe;
  auto states = predict_selection(config, paper_schedule());
  EXPECT_EQ(render(states), "CCCCRRRRR");  // tie at 0-0 goes to R&E
  config.tie_break = TieBreak::kArbitraryCommodity;
  states = predict_selection(config, paper_schedule());
  EXPECT_EQ(render(states), "CCCCCRRRR");
}

// ---------------------------------------- analytic vs micro-simulation

struct CrossCheckCase {
  int re_chain;    // intermediate ASes on the R&E side
  int comm_chain;  // intermediate ASes on the commodity side
};

class StateModelCrossCheck : public ::testing::TestWithParam<CrossCheckCase> {};

TEST_P(StateModelCrossCheck, SimulationMatchesAnalyticModel) {
  const auto& param = GetParam();
  // Path lengths at the edge: chain + 2 (origin + chain head's export);
  // the advantage is the difference of the two chain lengths.
  StateModelConfig config;
  config.re_advantage = param.comm_chain - param.re_chain;
  // The micro-sim edge uses the default deterministic router-id tie-break;
  // align the analytic model to whichever side its router ids favour by
  // checking both arbitrary variants.
  const auto simulated =
      simulate_selection(param.re_chain, param.comm_chain,
                         /*use_path_length=*/true, /*use_route_age=*/false,
                         paper_schedule());
  config.tie_break = TieBreak::kArbitraryRe;
  const auto predicted_re = predict_selection(config, paper_schedule());
  config.tie_break = TieBreak::kArbitraryCommodity;
  const auto predicted_comm = predict_selection(config, paper_schedule());
  EXPECT_TRUE(render(simulated) == render(predicted_re) ||
              render(simulated) == render(predicted_comm))
      << "sim " << render(simulated) << " vs " << render(predicted_re)
      << " / " << render(predicted_comm);
}

INSTANTIATE_TEST_SUITE_P(
    ChainSweep, StateModelCrossCheck,
    ::testing::Values(CrossCheckCase{0, 4}, CrossCheckCase{0, 2},
                      CrossCheckCase{1, 3}, CrossCheckCase{2, 2},
                      CrossCheckCase{3, 1}, CrossCheckCase{4, 0},
                      CrossCheckCase{2, 0}, CrossCheckCase{0, 0},
                      CrossCheckCase{5, 0}));

TEST(StateModelSim, RouteAgeNetworkSwitchesAtFirstCommodityStep) {
  // A case-J network in the micro-sim: equal chains, path length off,
  // route age on. Must switch exactly when commodity prepends begin.
  const auto states =
      simulate_selection(2, 2, /*use_path_length=*/false,
                         /*use_route_age=*/true, paper_schedule());
  EXPECT_EQ(render(states), "CCCCCRRRR");
}

TEST(Figure7Render, ContainsAllCases) {
  const std::string fig = render_figure7(paper_schedule());
  for (const char c : std::string("ABCDEFGHIJ")) {
    EXPECT_NE(fig.find(std::string(1, c)), std::string::npos);
  }
  EXPECT_NE(fig.find("4-0"), std::string::npos);
  EXPECT_NE(fig.find("0-4"), std::string::npos);
}

}  // namespace
}  // namespace re::core
