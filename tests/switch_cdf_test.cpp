// Tests for the Figure 8 switch-configuration CDF.
#include <gtest/gtest.h>

#include "core/switch_cdf.h"

namespace re::core {
namespace {

PrefixInference make(std::uint32_t id, std::uint32_t origin,
                     Inference inference, std::optional<int> first_re,
                     topo::ReSide side) {
  PrefixInference p;
  p.prefix = net::Prefix(net::IPv4Address(id << 10), 22);
  p.origin = net::Asn{origin};
  p.inference = inference;
  p.first_re_round = first_re;
  p.side = side;
  return p;
}

TEST(SwitchCdf, CumulativeAndMonotone) {
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 2, topo::ReSide::kParticipant),
      make(2, 20, Inference::kSwitchToRe, 4, topo::ReSide::kParticipant),
      make(3, 30, Inference::kSwitchToRe, 1, topo::ReSide::kPeerNren),
  };
  const SwitchCdf cdf = build_switch_cdf(a, a, paper_schedule(), false);
  EXPECT_EQ(cdf.participant_ases, 2u);
  EXPECT_EQ(cdf.peer_nren_ases, 1u);
  ASSERT_EQ(cdf.participant.size(), 9u);
  for (std::size_t i = 1; i < cdf.participant.size(); ++i) {
    EXPECT_GE(cdf.participant[i], cdf.participant[i - 1]);
    EXPECT_GE(cdf.peer_nren[i], cdf.peer_nren[i - 1]);
  }
  EXPECT_DOUBLE_EQ(cdf.participant.back(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.peer_nren.back(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.participant[1], 0.0);
  EXPECT_DOUBLE_EQ(cdf.participant[2], 0.5);
  EXPECT_DOUBLE_EQ(cdf.peer_nren[1], 1.0);
}

TEST(SwitchCdf, RequiresSwitchInBothExperiments) {
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 2, topo::ReSide::kParticipant)};
  std::vector<PrefixInference> b{
      make(1, 10, Inference::kAlwaysRe, 0, topo::ReSide::kParticipant)};
  const SwitchCdf cdf = build_switch_cdf(a, b, paper_schedule(), false);
  EXPECT_EQ(cdf.participant_ases, 0u);
}

TEST(SwitchCdf, FirstSwitchPerAsAcrossPrefixes) {
  // An AS originating many prefixes that switch at different rounds is
  // counted once, at its earliest switch (Appendix B).
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 5, topo::ReSide::kParticipant),
      make(2, 10, Inference::kSwitchToRe, 3, topo::ReSide::kParticipant),
      make(3, 10, Inference::kSwitchToRe, 7, topo::ReSide::kParticipant),
  };
  const SwitchCdf cdf = build_switch_cdf(a, a, paper_schedule(), false);
  EXPECT_EQ(cdf.participant_ases, 1u);
  EXPECT_DOUBLE_EQ(cdf.participant[2], 0.0);
  EXPECT_DOUBLE_EQ(cdf.participant[3], 1.0);
}

TEST(SwitchCdf, UseSecondSelectsOtherExperimentRounds) {
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 1, topo::ReSide::kParticipant)};
  std::vector<PrefixInference> b{
      make(1, 10, Inference::kSwitchToRe, 6, topo::ReSide::kParticipant)};
  const SwitchCdf first = build_switch_cdf(a, b, paper_schedule(), false);
  const SwitchCdf second = build_switch_cdf(a, b, paper_schedule(), true);
  EXPECT_DOUBLE_EQ(first.participant[1], 1.0);
  EXPECT_DOUBLE_EQ(second.participant[1], 0.0);
  EXPECT_DOUBLE_EQ(second.participant[6], 1.0);
}

TEST(SwitchCdf, AsInBothSidesCountedPerSide) {
  // Three ASes originated prefixes in both classes in the paper; each
  // class counts them separately.
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 2, topo::ReSide::kParticipant),
      make(2, 10, Inference::kSwitchToRe, 3, topo::ReSide::kPeerNren),
  };
  const SwitchCdf cdf = build_switch_cdf(a, a, paper_schedule(), false);
  EXPECT_EQ(cdf.participant_ases, 1u);
  EXPECT_EQ(cdf.peer_nren_ases, 1u);
}

TEST(SwitchCdf, FirstCommodityStepDetection) {
  // Case-J networks switch at "0-1" (index 5 of the paper schedule).
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 5, topo::ReSide::kPeerNren),
      make(2, 20, Inference::kSwitchToRe, 4, topo::ReSide::kPeerNren),
  };
  const SwitchCdf cdf = build_switch_cdf(a, a, paper_schedule(), false);
  EXPECT_EQ(cdf.switched_at_first_comm_step, 1u);
}

TEST(SwitchCdf, RenderContainsConfigLabels) {
  std::vector<PrefixInference> a{
      make(1, 10, Inference::kSwitchToRe, 2, topo::ReSide::kParticipant)};
  const SwitchCdf cdf = build_switch_cdf(a, a, paper_schedule(), false);
  const std::string text = render_switch_cdf(cdf);
  EXPECT_NE(text.find("4-0"), std::string::npos);
  EXPECT_NE(text.find("0-4"), std::string::npos);
  EXPECT_NE(text.find("participant"), std::string::npos);
}

}  // namespace
}  // namespace re::core
