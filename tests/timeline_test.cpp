// Tests for the Figure 3 timeline builder.
#include <gtest/gtest.h>

#include "core/timeline.h"

namespace re::core {
namespace {

ExperimentResult make_result() {
  ExperimentResult result;
  result.measurement_prefix = *net::Prefix::parse("163.253.63.0/24");
  result.experiment_start = 0;
  result.re_phase_end = 5 * net::kHour;
  result.experiment_end = 9 * net::kHour;
  for (int round = 0; round < 9; ++round) {
    RoundWindow w;
    w.round = round;
    w.config = paper_schedule()[static_cast<std::size_t>(round)];
    w.config_applied = round * net::kHour;
    w.probe_start = w.config_applied + net::kHour - 10 * net::kMinute;
    w.probe_end = w.probe_start + 7 * net::kMinute;
    result.windows.push_back(w);
  }
  return result;
}

void add_update(ExperimentResult& result, net::SimTime t) {
  result.update_log.record(t, net::Asn{3356}, result.measurement_prefix, false,
                           bgp::AsPath{net::Asn{3356}, net::Asn{396955}});
}

TEST(Timeline, PhaseCountsSplitAtRePhaseEnd) {
  ExperimentResult result = make_result();
  add_update(result, 10);                     // R&E phase
  add_update(result, 2 * net::kHour);         // R&E phase
  add_update(result, 6 * net::kHour);         // commodity phase
  add_update(result, 8 * net::kHour);         // commodity phase
  add_update(result, 8 * net::kHour + 1);     // commodity phase
  const Figure3 fig = build_figure3(result);
  EXPECT_EQ(fig.re_phase_updates, 2u);
  EXPECT_EQ(fig.comm_phase_updates, 3u);
}

TEST(Timeline, QuietPeriodMeasuredFromLastUpdate) {
  ExperimentResult result = make_result();
  // Update 5 minutes after the round-1 config change.
  add_update(result, net::kHour + 5 * net::kMinute);
  const Figure3 fig = build_figure3(result);
  const TimelineWindow& w1 = fig.windows[1];
  EXPECT_EQ(w1.updates_after_change, 1u);
  EXPECT_EQ(w1.quiet_before_probe,
            w1.probe_start - (net::kHour + 5 * net::kMinute));
  // Rounds with no updates count quiet from the config change.
  const TimelineWindow& w2 = fig.windows[2];
  EXPECT_EQ(w2.updates_after_change, 0u);
  EXPECT_EQ(w2.quiet_before_probe, w2.probe_start - w2.config_applied);
}

TEST(Timeline, UpdatesDuringProbeWindowCountedSeparately) {
  ExperimentResult result = make_result();
  const RoundWindow& w = result.windows[3];
  add_update(result, w.probe_start + 30);
  const Figure3 fig = build_figure3(result);
  EXPECT_EQ(fig.windows[3].updates_during_probe, 1u);
  EXPECT_EQ(fig.windows[3].updates_after_change, 0u);
}

TEST(Timeline, OtherPrefixesIgnored) {
  ExperimentResult result = make_result();
  result.update_log.record(10, net::Asn{3356},
                           *net::Prefix::parse("10.0.0.0/8"), false,
                           bgp::AsPath{net::Asn{1}});
  const Figure3 fig = build_figure3(result);
  EXPECT_EQ(fig.re_phase_updates, 0u);
  EXPECT_EQ(fig.comm_phase_updates, 0u);
}

TEST(Timeline, CumulativeSeriesIsMonotone) {
  ExperimentResult result = make_result();
  for (int i = 0; i < 50; ++i) {
    add_update(result, (i * 9 * net::kHour) / 50);
  }
  const Figure3 fig = build_figure3(result);
  ASSERT_FALSE(fig.cumulative.empty());
  for (std::size_t i = 1; i < fig.cumulative.size(); ++i) {
    EXPECT_GE(fig.cumulative[i], fig.cumulative[i - 1]);
  }
  EXPECT_EQ(fig.cumulative.back(), 50u);
}

TEST(Timeline, RenderContainsConfigsAndCounts) {
  ExperimentResult result = make_result();
  add_update(result, 10);
  const std::string out = render_figure3(build_figure3(result));
  EXPECT_NE(out.find("4-0"), std::string::npos);
  EXPECT_NE(out.find("0-4"), std::string::npos);
  EXPECT_NE(out.find("cumulative churn"), std::string::npos);
}

}  // namespace
}  // namespace re::core
