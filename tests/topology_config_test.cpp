// Tests for the text topology configuration loader.
#include <gtest/gtest.h>

#include "io/topology_config.h"

namespace re::io {
namespace {

using net::Asn;

TEST(TopologyConfig, BuildsFigure1Topology) {
  // Figure 1 of the paper: Columbia (14) hears UCSD (7377) routes via
  // NYSERNet (3754, R&E) and Cogent (174, commodity).
  const char* config = R"(
# Figure 1
peering 3754 11537 re        # NYSERNet on the R&E fabric
transit 3754 14 re           # Columbia under NYSERNet
transit 174 14               # Columbia under Cogent
transit 11537 2152 re
transit 2152 7377 re
transit 3356 2152          # CENIC's commodity provider
peering 174 3356
stance 14 prefer-re
announce 7377 192.0.2.0/24
)";
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology(config, network);
  ASSERT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  ASSERT_EQ(result.announcements.size(), 1u);
  apply_announcements(result.announcements, network);

  const bgp::Route* best =
      network.speaker(Asn{14})->best(*net::Prefix::parse("192.0.2.0/24"));
  ASSERT_NE(best, nullptr);
  // Columbia deterministically selects the R&E route despite equal AS
  // path lengths (the figure's point).
  EXPECT_TRUE(best->re_edge);
  EXPECT_EQ(best->learned_from, Asn{3754});
  EXPECT_EQ(best->path_length,
            network.speaker(Asn{14})
                ->candidates(*net::Prefix::parse("192.0.2.0/24"))[0]
                .path_length);
}

TEST(TopologyConfig, AcceptsAsnPrefixesAndComments) {
  const char* config = R"(
transit AS3356 AS396955   # Lumen provides the blend
collector as3356
)";
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology(config, network);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(network.contains(Asn{3356}));
  EXPECT_TRUE(network.contains(Asn{396955}));
  EXPECT_TRUE(network.collector_peers().count(Asn{3356}));
}

TEST(TopologyConfig, AppliesPolicyDirectives) {
  const char* config = R"(
transit 10 42 re
transit 20 42
stance 42 equal
prepend 42 commodity 2
neighbor-pref 42 10 102
path-block 10 42 11537
route-age 42 on
path-length 42 off
re-transit 10
vrf-split 42
damping 42
default-route 42 20
)";
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology(config, network);
  ASSERT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);

  const bgp::Speaker* s = network.speaker(Asn{42});
  EXPECT_EQ(s->import_policy().re_stance, bgp::ReStance::kEqualPref);
  EXPECT_EQ(s->export_policy().commodity_prepend, 2u);
  EXPECT_EQ(s->import_policy().neighbor_pref.at(Asn{10}), 102u);
  EXPECT_TRUE(s->decision().use_route_age);
  EXPECT_FALSE(s->decision().use_as_path_length);
  EXPECT_TRUE(s->vrf_split_export());
  ASSERT_NE(s->default_route_session(), nullptr);
  EXPECT_EQ(s->default_route_session()->neighbor, Asn{20});
  EXPECT_TRUE(network.speaker(Asn{10})->re_transit_between_peers());
  EXPECT_FALSE(
      network.speaker(Asn{10})->export_policy().path_allowed(
          Asn{42}, bgp::AsPath{Asn{11537}}));
}

TEST(TopologyConfig, AnnounceFlags) {
  const char* config = R"(
transit 10 1 re
transit 20 1
announce 1 10.0.0.0/24 re-only
announce 1 10.1.0.0/24 no-commodity
announce 1 10.2.0.0/24 no-re
)";
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology(config, network);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.announcements.size(), 3u);
  EXPECT_TRUE(result.announcements[0].options.re_only);
  EXPECT_FALSE(result.announcements[1].options.to_commodity_sessions);
  EXPECT_FALSE(result.announcements[2].options.to_re_sessions);
}

TEST(TopologyConfig, ReportsErrorsWithLineNumbers) {
  const char* config = R"(transit 10
bogus-directive 1 2
stance 42 sideways
transit 10 42
)";
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology(config, network);
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.errors.size(), 3u);
  EXPECT_NE(result.errors[0].find("line 1"), std::string::npos);
  EXPECT_NE(result.errors[1].find("line 2"), std::string::npos);
  EXPECT_NE(result.errors[2].find("line 3"), std::string::npos);
  // The valid directive on line 4 was still applied.
  EXPECT_TRUE(network.contains(Asn{42}));
}

TEST(TopologyConfig, RejectsBadValues) {
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology(R"(
transit 0 5
transit 5 5
prepend 5 commodity x
announce 5 not-a-prefix
collector nope
)", network);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.errors.size(), 5u);
}

TEST(TopologyConfig, EmptyAndCommentOnlyInputIsOk) {
  bgp::BgpNetwork network(1);
  const TopologyLoadResult result = load_topology("\n# nothing here\n\n", network);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.directives, 0u);
  EXPECT_TRUE(result.announcements.empty());
}

}  // namespace
}  // namespace re::io
