// Tests for the synthetic R&E ecosystem generator: structural invariants,
// policy planting, prefix allocation, and network wiring.
#include <gtest/gtest.h>

#include <unordered_set>

#include "bgp/network.h"
#include "netbase/prefix_trie.h"
#include "topology/ecosystem.h"
#include "topology/geo.h"

namespace re::topo {
namespace {

EcosystemParams small_params(std::uint64_t seed = 20250529) {
  EcosystemParams params;
  params = params.scaled(0.08);
  params.seed = seed;
  return params;
}

class EcosystemFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ecosystem_ = new Ecosystem(Ecosystem::generate(small_params()));
  }
  static void TearDownTestSuite() {
    delete ecosystem_;
    ecosystem_ = nullptr;
  }
  static const Ecosystem& eco() { return *ecosystem_; }

 private:
  static const Ecosystem* ecosystem_;
};
const Ecosystem* EcosystemFixture::ecosystem_ = nullptr;

TEST_F(EcosystemFixture, MemberAndPrefixCountsMatchParams) {
  const auto& params = eco().params();
  EXPECT_EQ(static_cast<int>(eco().members().size()), params.member_count);
  EXPECT_EQ(static_cast<int>(eco().prefixes().size()), params.target_prefixes);
}

TEST_F(EcosystemFixture, CoveredPrefixCountMatches) {
  int covered = 0;
  for (const PrefixRecord& p : eco().prefixes()) covered += p.covered ? 1 : 0;
  EXPECT_EQ(covered, eco().params().covered_prefixes);
}

TEST_F(EcosystemFixture, CoveredPrefixesAreActuallyCovered) {
  net::PrefixTrie<net::Asn> trie;
  for (const PrefixRecord& p : eco().prefixes()) {
    if (!p.covered) trie.insert(p.prefix, p.origin);
  }
  for (const PrefixRecord& p : eco().prefixes()) {
    if (p.covered) {
      EXPECT_TRUE(trie.has_shorter_cover(p.prefix)) << p.prefix.to_string();
    }
  }
}

TEST_F(EcosystemFixture, NonCoveredPrefixesDoNotOverlap) {
  net::PrefixTrie<net::Asn> trie;
  for (const PrefixRecord& p : eco().prefixes()) {
    if (p.covered) continue;
    EXPECT_FALSE(trie.has_shorter_cover(p.prefix)) << p.prefix.to_string();
    EXPECT_TRUE(trie.insert(p.prefix, p.origin)) << p.prefix.to_string();
  }
}

TEST_F(EcosystemFixture, MeasurementPrefixDisjointFromMemberPrefixes) {
  const net::Prefix meas = eco().measurement().prefix;
  for (const PrefixRecord& p : eco().prefixes()) {
    EXPECT_FALSE(meas.covers(p.prefix));
    EXPECT_FALSE(p.prefix.covers(meas));
  }
}

TEST_F(EcosystemFixture, EveryMemberHasAnReProvider) {
  for (const net::Asn member : eco().members()) {
    const AsRecord* r = eco().directory().find(member);
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->re_providers.empty()) << member.to_string();
  }
}

TEST_F(EcosystemFixture, EveryPrefixOriginIsAMember) {
  const std::unordered_set<net::Asn> members(eco().members().begin(),
                                             eco().members().end());
  for (const PrefixRecord& p : eco().prefixes()) {
    EXPECT_TRUE(members.count(p.origin)) << p.origin.to_string();
  }
}

TEST_F(EcosystemFixture, SidesArePlausiblySplit) {
  int participants = 0, intl = 0;
  for (const net::Asn member : eco().members()) {
    const AsRecord* r = eco().directory().find(member);
    (r->side == ReSide::kParticipant ? participants : intl) += 1;
  }
  EXPECT_GT(participants, 0);
  EXPECT_GT(intl, 0);
  const double share = static_cast<double>(participants) /
                       static_cast<double>(participants + intl);
  EXPECT_NEAR(share, eco().params().participant_fraction, 0.10);
}

TEST_F(EcosystemFixture, ParticipantsHaveStatesInternationalsHaveCountries) {
  for (const net::Asn member : eco().members()) {
    const AsRecord* r = eco().directory().find(member);
    if (r->side == ReSide::kParticipant) {
      EXPECT_EQ(r->country, "US") << member.to_string();
      EXPECT_FALSE(r->us_state.empty()) << member.to_string();
    } else {
      EXPECT_NE(r->country, "US") << member.to_string();
    }
  }
}

TEST_F(EcosystemFixture, StanceMixRoughlyMatchesParams) {
  int prefer_re = 0, equal = 0, other = 0;
  int with_commodity = 0;
  for (const net::Asn member : eco().members()) {
    const AsRecord* r = eco().directory().find(member);
    if (!r->traits.has_commodity) continue;
    ++with_commodity;
    if (r->traits.reject_re_routes) {
      ++other;
    } else if (r->traits.stance == bgp::ReStance::kPreferRe) {
      ++prefer_re;
    } else if (r->traits.stance == bgp::ReStance::kEqualPref) {
      ++equal;
    } else {
      ++other;
    }
  }
  ASSERT_GT(with_commodity, 50);
  EXPECT_NEAR(static_cast<double>(prefer_re) / with_commodity,
              eco().params().p_prefer_re, 0.08);
  EXPECT_NEAR(static_cast<double>(equal) / with_commodity,
              eco().params().p_equal_pref, 0.06);
}

TEST_F(EcosystemFixture, SpecialPlantsExist) {
  int route_age = 0, vrf = 0, views = 0;
  for (const net::Asn member : eco().members()) {
    const AsRecord* r = eco().directory().find(member);
    route_age += r->traits.uses_route_age ? 1 : 0;
    vrf += r->traits.vrf_split_export ? 1 : 0;
    views += r->traits.provides_public_view ? 1 : 0;
  }
  EXPECT_EQ(route_age, eco().params().route_age_ases);
  EXPECT_EQ(vrf, eco().params().vrf_split_members);
  EXPECT_EQ(views, eco().params().public_view_members);
  EXPECT_EQ(eco().member_view_peers().size(),
            static_cast<std::size_t>(eco().params().public_view_members));
}

TEST_F(EcosystemFixture, NiksWiringMatchesFigure4) {
  const AsRecord* niks = eco().directory().find(eco().niks());
  ASSERT_NE(niks, nullptr);
  EXPECT_EQ(niks->country, "RU");
  // Providers: GEANT, NORDUnet (R&E) and Arelion (commodity).
  EXPECT_NE(std::find(niks->re_providers.begin(), niks->re_providers.end(),
                      eco().geant()),
            niks->re_providers.end());
  EXPECT_NE(std::find(niks->re_providers.begin(), niks->re_providers.end(),
                      eco().nordunet()),
            niks->re_providers.end());
  ASSERT_FALSE(niks->commodity_providers.empty());
  EXPECT_EQ(niks->commodity_providers.front(), net::asn::kArelion);
}

TEST_F(EcosystemFixture, NiksMembersPlanted) {
  int ru_members = 0;
  for (const net::Asn member : eco().members()) {
    const AsRecord* r = eco().directory().find(member);
    if (r->country == "RU") {
      ++ru_members;
      ASSERT_FALSE(r->re_providers.empty());
      EXPECT_EQ(r->re_providers.front(), eco().niks());
    }
  }
  EXPECT_EQ(ru_members, eco().params().niks_members);
}

TEST_F(EcosystemFixture, IsReTransitClassification) {
  EXPECT_TRUE(eco().is_re_transit(eco().internet2()));
  EXPECT_TRUE(eco().is_re_transit(eco().geant()));
  EXPECT_TRUE(eco().is_re_transit(eco().nordunet()));
  EXPECT_TRUE(eco().is_re_transit(eco().niks()));
  EXPECT_FALSE(eco().is_re_transit(eco().lumen()));
  EXPECT_FALSE(eco().is_re_transit(eco().members().front()));
  EXPECT_FALSE(eco().is_re_transit(net::Asn{999999}));
}

TEST_F(EcosystemFixture, PrefixesOfReturnsAllOriginations) {
  std::size_t total = 0;
  for (const net::Asn member : eco().members()) {
    total += eco().prefixes_of(member).size();
  }
  EXPECT_EQ(total, eco().prefixes().size());
}

TEST_F(EcosystemFixture, GenerationIsDeterministic) {
  const Ecosystem again = Ecosystem::generate(small_params());
  ASSERT_EQ(again.prefixes().size(), eco().prefixes().size());
  for (std::size_t i = 0; i < again.prefixes().size(); ++i) {
    EXPECT_EQ(again.prefixes()[i].prefix, eco().prefixes()[i].prefix);
    EXPECT_EQ(again.prefixes()[i].origin, eco().prefixes()[i].origin);
  }
}

TEST_F(EcosystemFixture, DifferentSeedsDiffer) {
  const Ecosystem other = Ecosystem::generate(small_params(999));
  bool any_difference = other.prefixes().size() != eco().prefixes().size();
  for (std::size_t i = 0;
       !any_difference && i < other.prefixes().size(); ++i) {
    any_difference = other.prefixes()[i].prefix != eco().prefixes()[i].prefix;
  }
  EXPECT_TRUE(any_difference);
}

// ----------------------------------------------------- network wiring

TEST_F(EcosystemFixture, BuildNetworkCreatesAllSpeakers) {
  bgp::BgpNetwork network(1);
  eco().build_network(network);
  EXPECT_EQ(network.speaker_count(), eco().directory().size());
  for (const net::Asn asn : eco().members()) {
    EXPECT_TRUE(network.contains(asn));
  }
}

TEST_F(EcosystemFixture, MeasurementAnnouncementsReachMembers) {
  bgp::BgpNetwork network(1);
  eco().build_network(network);
  const net::Prefix meas = eco().measurement().prefix;

  network.announce(eco().measurement().commodity_origin, meas);
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(eco().measurement().internet2_re_origin, meas, re_only);
  network.run_to_convergence();

  std::size_t with_route = 0;
  for (const net::Asn member : eco().members()) {
    with_route += network.speaker(member)->has_route(meas) ? 1 : 0;
  }
  // Nearly every member should have some route to the measurement prefix.
  EXPECT_GT(with_route, eco().members().size() * 9 / 10);
}

TEST_F(EcosystemFixture, ReOnlyAnnouncementStaysOffCommodityCore) {
  bgp::BgpNetwork network(1);
  eco().build_network(network);
  const net::Prefix meas = eco().measurement().prefix;
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(eco().measurement().internet2_re_origin, meas, re_only);
  network.run_to_convergence();
  for (const net::Asn tier1 : eco().tier1s()) {
    EXPECT_EQ(network.speaker(tier1)->best(meas), nullptr) << tier1.to_string();
  }
}

TEST_F(EcosystemFixture, GeantDoesNotGiveNiksInternet2Routes) {
  bgp::BgpNetwork network(1);
  eco().build_network(network);
  const net::Prefix meas = eco().measurement().prefix;
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(eco().internet2(), meas, re_only);
  network.run_to_convergence();

  // NIKS has no route via GEANT; its R&E route comes via NORDUnet.
  const auto candidates = network.speaker(eco().niks())->candidates(meas);
  for (const bgp::Route& r : candidates) {
    EXPECT_NE(r.learned_from, eco().geant());
  }
  const bgp::Route* best = network.speaker(eco().niks())->best(meas);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, eco().nordunet());
}

TEST_F(EcosystemFixture, NiksPrefersGeantForSurfRoute) {
  bgp::BgpNetwork network(1);
  eco().build_network(network);
  const net::Prefix meas = eco().measurement().prefix;
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(eco().measurement().surf_re_origin, meas, re_only);
  network.announce(eco().measurement().commodity_origin, meas);
  network.run_to_convergence();

  const bgp::Route* best = network.speaker(eco().niks())->best(meas);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->learned_from, eco().geant());  // localpref 102 wins
}

// ----------------------------------------------------------------- geo

TEST(Geo, ProfilesAreWellFormed) {
  const auto nrens = default_nren_profiles();
  EXPECT_GE(nrens.size(), 30u);
  std::unordered_set<std::uint32_t> asns;
  for (const NrenProfile& p : nrens) {
    EXPECT_FALSE(p.country.empty());
    EXPECT_TRUE(p.asn.valid());
    EXPECT_TRUE(asns.insert(p.asn.value()).second) << p.name << " duplicate ASN";
    EXPECT_GE(p.member_prepend_probability, 0.0);
    EXPECT_LE(p.member_prepend_probability, 1.0);
  }
  const auto regionals = default_regional_profiles();
  EXPECT_GE(regionals.size(), 40u);
  for (const RegionalProfile& p : regionals) {
    EXPECT_EQ(p.us_state.size(), 2u);
    EXPECT_TRUE(asns.insert(p.asn.value()).second) << p.name << " duplicate ASN";
  }
}

TEST(Geo, KnownNetworksPresent) {
  bool surf = false, dfn = false, nysernet = false, cenic = false;
  for (const NrenProfile& p : default_nren_profiles()) {
    surf |= p.name == "SURF" && p.country == "NL";
    dfn |= p.name == "DFN" && p.shares_provider_with_vantage;
  }
  for (const RegionalProfile& p : default_regional_profiles()) {
    nysernet |= p.name == "NYSERNet" && !p.provides_commodity &&
                p.member_prepend_probability > 0.8;
    cenic |= p.name == "CENIC" && p.provides_commodity;
  }
  EXPECT_TRUE(surf);
  EXPECT_TRUE(dfn);
  EXPECT_TRUE(nysernet);
  EXPECT_TRUE(cenic);
}

TEST(Geo, RegionListsUniqueAndSorted) {
  const auto countries = european_countries();
  EXPECT_TRUE(std::is_sorted(countries.begin(), countries.end()));
  EXPECT_EQ(std::unordered_set<std::string>(countries.begin(), countries.end())
                .size(),
            countries.size());
  const auto states = us_states();
  EXPECT_TRUE(std::is_sorted(states.begin(), states.end()));
  EXPECT_GE(states.size(), 40u);
}

TEST(EcosystemParams, ScalingKeepsMinimums) {
  EcosystemParams params;
  const EcosystemParams tiny = params.scaled(0.001);
  EXPECT_GE(tiny.member_count, 20);
  EXPECT_GE(tiny.target_prefixes, 40);
  EXPECT_GE(tiny.vrf_split_members, 1);
  EXPECT_GE(tiny.route_age_ases, 1);
}

}  // namespace
}  // namespace re::topo
