// Tests for the AS-level tracer.
#include <gtest/gtest.h>

#include "dataplane/return_path.h"
#include "probing/tracer.h"
#include "topology/ecosystem.h"

namespace re::probing {
namespace {

using net::Asn;
using net::Prefix;

const Prefix kPrefix = *Prefix::parse("163.253.63.0/24");

// origin(1) <- mid(10) <- edge(42).
struct ChainFixture {
  bgp::BgpNetwork network{7};
  ChainFixture() {
    network.connect_transit(Asn{10}, Asn{1});
    network.connect_transit(Asn{10}, Asn{42});
    network.announce(Asn{1}, kPrefix);
    network.run_to_convergence();
  }
};

TEST(Tracer, WalksHopByHopToOrigin) {
  ChainFixture f;
  Tracer tracer(f.network, kPrefix, {Asn{1}});
  const TraceResult result = tracer.trace(Asn{42});
  ASSERT_TRUE(result.reached);
  ASSERT_EQ(result.hops.size(), 2u);
  EXPECT_EQ(result.hops[0].asn, Asn{10});
  EXPECT_EQ(result.hops[0].ttl, 1);
  EXPECT_FALSE(result.hops[0].destination);
  EXPECT_EQ(result.hops[1].asn, Asn{1});
  EXPECT_TRUE(result.hops[1].destination);
}

TEST(Tracer, SourceAtOriginIsOneHop) {
  ChainFixture f;
  Tracer tracer(f.network, kPrefix, {Asn{1}});
  const TraceResult result = tracer.trace(Asn{1});
  ASSERT_TRUE(result.reached);
  ASSERT_EQ(result.hops.size(), 1u);
  EXPECT_TRUE(result.hops[0].destination);
}

TEST(Tracer, NoRouteStopsTheTrace) {
  bgp::BgpNetwork network(1);
  network.add_speaker(Asn{42});
  Tracer tracer(network, kPrefix, {Asn{1}});
  const TraceResult result = tracer.trace(Asn{42});
  EXPECT_FALSE(result.reached);
  EXPECT_TRUE(result.hops.empty());
  EXPECT_NE(result.to_string().find("!"), std::string::npos);
}

TEST(Tracer, MaxTtlBoundsTheWalk) {
  // A long chain: origin <- c1 <- c2 <- c3 <- c4 <- edge.
  bgp::BgpNetwork network(3);
  Asn below{1};
  for (std::uint32_t i = 0; i < 4; ++i) {
    const Asn hop{100 + i};
    network.connect_transit(hop, below);
    below = hop;
  }
  network.connect_transit(below, Asn{42});
  network.announce(Asn{1}, kPrefix);
  network.run_to_convergence();
  Tracer tracer(network, kPrefix, {Asn{1}});
  const TraceResult bounded = tracer.trace(Asn{42}, /*max_ttl=*/2);
  EXPECT_FALSE(bounded.reached);
  EXPECT_EQ(bounded.hops.size(), 2u);
  const TraceResult full = tracer.trace(Asn{42});
  EXPECT_TRUE(full.reached);
  EXPECT_EQ(full.hops.size(), 5u);
}

TEST(Tracer, AgreesWithReturnPathResolver) {
  // On the ecosystem, the tracer's hop sequence must equal the dataplane
  // resolver's hops (minus the source itself).
  topo::EcosystemParams params;
  params = params.scaled(0.05);
  params.seed = 20250529;
  const topo::Ecosystem eco = topo::Ecosystem::generate(params);
  bgp::BgpNetwork network(5);
  eco.build_network(network);
  const net::Prefix meas = eco.measurement().prefix;
  network.announce(eco.measurement().commodity_origin, meas);
  bgp::OriginationOptions re_only;
  re_only.re_only = true;
  network.announce(eco.internet2(), meas, re_only);
  network.run_to_convergence();

  dataplane::ReturnPathResolver resolver(
      network, meas, {eco.measurement().commodity_origin, eco.internet2()});
  Tracer tracer(network, meas,
                {eco.measurement().commodity_origin, eco.internet2()});

  std::size_t compared = 0;
  for (const net::Asn member : eco.members()) {
    const dataplane::ReturnPath path = resolver.resolve(member);
    const TraceResult trace = tracer.trace(member);
    ASSERT_EQ(trace.reached, path.reachable) << member.to_string();
    if (!path.reachable) continue;
    ASSERT_EQ(trace.hops.size() + 1, path.hops.size()) << member.to_string();
    for (std::size_t i = 0; i < trace.hops.size(); ++i) {
      EXPECT_EQ(trace.hops[i].asn, path.hops[i + 1]) << member.to_string();
    }
    EXPECT_EQ(trace.hops.back().asn, path.terminal);
    if (++compared >= 60) break;
  }
  EXPECT_GE(compared, 50u);
}

TEST(Tracer, WireVerificationPasses) {
  ChainFixture f;
  Tracer tracer(f.network, kPrefix, {Asn{1}});
  const TraceResult result = tracer.trace(Asn{42});
  EXPECT_TRUE(tracer.verify_wire(result,
                                 *net::IPv4Address::parse("163.253.63.63"),
                                 kPrefix.address_at(7)));
}

TEST(Tracer, RenderShowsPathAndDestination) {
  ChainFixture f;
  Tracer tracer(f.network, kPrefix, {Asn{1}});
  const std::string text = tracer.trace(Asn{42}).to_string();
  EXPECT_NE(text.find("AS42 ->"), std::string::npos);
  EXPECT_NE(text.find("10"), std::string::npos);
  EXPECT_NE(text.find("1*"), std::string::npos);
}

}  // namespace
}  // namespace re::probing
