// Tests for the collector update log (window queries, RIB reconstruction).
#include <gtest/gtest.h>

#include "bgp/update_log.h"

namespace re::bgp {
namespace {

using net::Asn;
using net::Prefix;

const Prefix kPrefix = *Prefix::parse("163.253.63.0/24");
const Prefix kOther = *Prefix::parse("10.0.0.0/8");

// record() interns the path into the log's own table.
void record(UpdateLog& log, net::SimTime t, Asn peer, bool withdraw,
            const AsPath& path = AsPath{}) {
  log.record(t, peer, kPrefix, withdraw, path);
}

TEST(UpdateLog, CountInWindowFiltersTimeAndPrefix) {
  UpdateLog log;
  record(log, 10, Asn{1}, false, AsPath{Asn{1}, Asn{9}});
  record(log, 20, Asn{1}, false, AsPath{Asn{1}, Asn{8}, Asn{9}});
  log.record(15, Asn{1}, kOther, false, AsPath{Asn{1}});
  EXPECT_EQ(log.count_in_window(kPrefix, 0, 100), 2u);
  EXPECT_EQ(log.count_in_window(kPrefix, 0, 15), 1u);
  EXPECT_EQ(log.count_in_window(kPrefix, 20, 21), 1u);  // inclusive begin
  EXPECT_EQ(log.count_in_window(kPrefix, 0, 10), 0u);   // exclusive end
  EXPECT_EQ(log.count_in_window(kOther, 0, 100), 1u);
}

TEST(UpdateLog, InWindowReturnsMatchingUpdates) {
  UpdateLog log;
  record(log, 10, Asn{1}, false, AsPath{Asn{1}, Asn{9}});
  record(log, 50, Asn{2}, true);
  const auto window = log.in_window(kPrefix, 0, 60);
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].peer, Asn{1});
  EXPECT_TRUE(window[1].withdraw);
}

TEST(UpdateLog, RibAtReconstructsLatestState) {
  UpdateLog log;
  record(log, 10, Asn{1}, false, AsPath{Asn{1}, Asn{9}});
  record(log, 20, Asn{2}, false, AsPath{Asn{2}, Asn{9}});
  record(log, 30, Asn{1}, false, AsPath{Asn{1}, Asn{8}, Asn{9}});
  record(log, 40, Asn{2}, true);

  const auto at25 = log.rib_at(kPrefix, 25);
  ASSERT_EQ(at25.size(), 2u);
  EXPECT_EQ(at25.at(Asn{1}).length(), 2u);

  const auto at35 = log.rib_at(kPrefix, 35);
  EXPECT_EQ(at35.at(Asn{1}).length(), 3u);  // replaced by the newer path
  EXPECT_TRUE(at35.count(Asn{2}));

  const auto at45 = log.rib_at(kPrefix, 45);
  EXPECT_FALSE(at45.count(Asn{2}));  // withdrawn
  EXPECT_TRUE(at45.count(Asn{1}));
}

TEST(UpdateLog, RibAtBoundaryIsInclusive) {
  UpdateLog log;
  record(log, 10, Asn{1}, false, AsPath{Asn{1}, Asn{9}});
  EXPECT_TRUE(log.rib_at(kPrefix, 10).count(Asn{1}));
  EXPECT_FALSE(log.rib_at(kPrefix, 9).count(Asn{1}));
}

TEST(UpdateLog, ClearEmptiesLog) {
  UpdateLog log;
  record(log, 10, Asn{1}, false);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.updates().empty());
}

}  // namespace
}  // namespace re::bgp
