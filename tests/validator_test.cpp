// Tests for the Table 3 view-congruence validator and the planted
// ground-truth validation.
#include <gtest/gtest.h>

#include "core/validator.h"
#include "probing/seeds.h"

namespace re::core {
namespace {

struct World {
  topo::Ecosystem ecosystem;
  std::vector<PrefixInference> inferences;
  ExperimentResult result;
};

World* make_world() {
  topo::EcosystemParams params;
  params = params.scaled(0.08);
  params.seed = 20250529;
  auto* world = new World{topo::Ecosystem::generate(params), {}, {}};
  const probing::SeedDatabase db =
      probing::SeedDatabase::generate(world->ecosystem, probing::SeedGenParams{});
  const probing::SelectionResult selection =
      probing::select_probe_seeds(world->ecosystem, db, 11);
  ExperimentConfig config;
  config.experiment = ReExperiment::kInternet2;
  config.seed = 502;
  world->result =
      ExperimentController(world->ecosystem, selection.seeds, config).run();
  world->inferences = classify_experiment(world->result);
  return world;
}

class ValidatorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = make_world(); }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }
  static const World& world() { return *world_; }

 private:
  static const World* world_;
};
const World* ValidatorFixture::world_ = nullptr;

TEST_F(ValidatorFixture, MajorityInferenceCoversObservedAses) {
  const auto majority = majority_inference_by_as(world().inferences);
  EXPECT_GT(majority.size(), 100u);
  // Every AS with a majority appears among the inferences.
  for (const auto& [as, inference] : majority) {
    bool found = false;
    for (const PrefixInference& p : world().inferences) {
      if (p.origin == as && p.inference != Inference::kExcludedLoss) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << as.to_string();
  }
}

TEST_F(ValidatorFixture, Table3MostViewsCongruent) {
  const Table3 table =
      validate_against_views(world().inferences, world().result, world().ecosystem);
  std::size_t congruent = 0, incongruent = 0;
  for (const auto& [inference, row] : table.rows) {
    congruent += row.congruent;
    incongruent += row.incongruent;
  }
  // Paper: 22 of 25 congruent, with VRF-split export behind every
  // incongruence. At test scale the view population is small but the
  // structure must hold exactly: only planted VRF ASes are incongruent.
  ASSERT_GT(congruent + incongruent, 2u);
  std::size_t planted_vrf = 0;
  for (const net::Asn as : world().ecosystem.member_view_peers()) {
    const topo::AsRecord* r = world().ecosystem.directory().find(as);
    planted_vrf += r->traits.vrf_split_export ? 1 : 0;
  }
  EXPECT_LE(incongruent, planted_vrf);
  EXPECT_GE(congruent, congruent + incongruent - planted_vrf);
}

TEST_F(ValidatorFixture, VrfSplitAsesAreTheIncongruentOnes) {
  const Table3 table =
      validate_against_views(world().inferences, world().result, world().ecosystem);
  std::size_t vrf_incongruent = 0, vrf_total = 0;
  for (const ViewCongruence& d : table.details) {
    if (d.vrf_split) {
      ++vrf_total;
      vrf_incongruent += d.congruent ? 0 : 1;
      // A VRF-split AS shows the commodity origin to the collector even
      // though it prefers (and forwards over) R&E.
      if (d.inferred == Inference::kAlwaysRe) {
        EXPECT_FALSE(d.congruent) << d.as.to_string();
        EXPECT_TRUE(d.saw_commodity_origin);
        EXPECT_FALSE(d.saw_re_origin);
      }
    } else if (!d.congruent) {
      ADD_FAILURE() << "unexpected incongruence at non-VRF AS "
                    << d.as.to_string();
    }
  }
  ASSERT_GT(vrf_total, 0u);
  EXPECT_EQ(vrf_incongruent, vrf_total);
}

TEST_F(ValidatorFixture, AlwaysReViewsSawOnlyReOrigin) {
  const Table3 table =
      validate_against_views(world().inferences, world().result, world().ecosystem);
  for (const ViewCongruence& d : table.details) {
    if (d.inferred == Inference::kAlwaysRe && d.congruent) {
      EXPECT_TRUE(d.saw_re_origin);
      EXPECT_FALSE(d.saw_commodity_origin);
    }
    if (d.inferred == Inference::kSwitchToRe && d.congruent) {
      EXPECT_TRUE(d.saw_re_origin);
      EXPECT_TRUE(d.saw_commodity_origin);
    }
  }
}

TEST_F(ValidatorFixture, GroundTruthSampleLimit) {
  const GroundTruthReport full =
      validate_against_plant(world().inferences, world().ecosystem);
  const GroundTruthReport sample =
      validate_against_plant(world().inferences, world().ecosystem, 33);
  EXPECT_EQ(sample.ases_checked, 33u);
  EXPECT_GE(full.ases_checked, sample.ases_checked);
  // Paper: >= 32 of 33 correct.
  EXPECT_GE(sample.correct, 31u);
}

TEST_F(ValidatorFixture, ConfusionMatrixNonEmpty) {
  const GroundTruthReport report =
      validate_against_plant(world().inferences, world().ecosystem);
  EXPECT_FALSE(report.confusion.empty());
  std::size_t total = 0;
  for (const auto& [key, count] : report.confusion) total += count;
  EXPECT_EQ(total, report.ases_checked);
}

TEST(MajorityInference, TieYieldsNullopt) {
  std::vector<PrefixInference> inferences;
  PrefixInference a;
  a.origin = net::Asn{1};
  a.prefix = *net::Prefix::parse("10.0.0.0/24");
  a.inference = Inference::kAlwaysRe;
  PrefixInference b = a;
  b.prefix = *net::Prefix::parse("10.0.1.0/24");
  b.inference = Inference::kAlwaysCommodity;
  inferences.push_back(a);
  inferences.push_back(b);
  const auto majority = majority_inference_by_as(inferences);
  ASSERT_TRUE(majority.count(net::Asn{1}));
  EXPECT_FALSE(majority.at(net::Asn{1}).has_value());
}

TEST(MajorityInference, ClearWinnerReported) {
  std::vector<PrefixInference> inferences;
  for (int i = 0; i < 3; ++i) {
    PrefixInference p;
    p.origin = net::Asn{1};
    p.prefix = net::Prefix(net::IPv4Address(0x0a000000u + (i << 8)), 24);
    p.inference = i < 2 ? Inference::kAlwaysRe : Inference::kMixed;
    inferences.push_back(p);
  }
  const auto majority = majority_inference_by_as(inferences);
  EXPECT_EQ(majority.at(net::Asn{1}), Inference::kAlwaysRe);
}

TEST(MajorityInference, LossPrefixesIgnored) {
  std::vector<PrefixInference> inferences;
  PrefixInference p;
  p.origin = net::Asn{1};
  p.prefix = *net::Prefix::parse("10.0.0.0/24");
  p.inference = Inference::kExcludedLoss;
  inferences.push_back(p);
  EXPECT_TRUE(majority_inference_by_as(inferences).empty());
}

}  // namespace
}  // namespace re::core
